"""Parallel sweep execution: fan sweep cells out over worker processes.

The paper's results are grids — Figure 3 sweeps subpage size x memory
size, Figure 9 sweeps applications x schemes — and every cell is an
independent :func:`~repro.sim.simulator.simulate` call.  This module is
the execution substrate those grids (and any future, larger studies) run
on:

* :func:`run_cells` fans a list of :class:`SweepJob` cells out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Cells whose payload does
  not pickle (e.g. a config holding an ad-hoc latency-model instance)
  transparently fall back to inline execution, as does the whole batch
  when ``workers <= 1`` — so results are always bit-identical to a
  serial run (the simulator is deterministic and shares no state across
  cells).
* :class:`WorkerPool` is the persistent execution substrate: a
  long-lived process pool plus a
  :class:`~repro.sim.shm.SharedTraceArena` that publishes each unique
  trace's arrays into shared memory once, so jobs ship a tiny
  :class:`~repro.sim.shm.TraceHandle` instead of pickling the arrays
  per cell.  ``experiments.common.execution_scope`` creates one pool
  and reuses it across every ``run_cells`` batch in the scope.
* :class:`ResultCache` is a content-keyed on-disk cache: a cell's key
  hashes the trace fingerprint (array contents + granularities) together
  with every configuration field, so re-running an experiment skips
  completed cells and any input change misses cleanly.
* :class:`CellEvent` progress callbacks report per-cell status and
  timing; ``python -m repro.experiments --progress`` surfaces them.
  Pooled cells are collected ``as_completed``, so events and cache
  write-through happen as cells finish, not in submission order.
* ``run_cells(batch=True)`` groups eligible cells by trace fingerprint
  and hands each group to the cross-cell batched engine
  (:mod:`repro.sim.batch`), which simulates all of a trace's cells
  over one shared scan — per worker, one batch unit per shared-memory
  trace.

Environment knobs: ``REPRO_WORKERS`` sets the default worker count,
``REPRO_CACHE_DIR`` enables (and locates) the default flat-file result
cache, ``REPRO_STORE`` selects the sqlite-backed
:class:`repro.store.SqliteResultStore` instead (same keys, same
protocol — see :mod:`repro.store`), and ``REPRO_SHM`` controls the
shared-memory arena (see :mod:`repro.sim.shm`).  Malformed knob values
degrade to the documented defaults with a warning
(:mod:`repro.envknobs`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.envknobs import env_int, env_str
from repro.errors import ConfigError
from repro.sim import shm
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.shm import SharedTraceArena, TraceHandle
from repro.sim.simulator import simulate
from repro.trace.compress import RunTrace

#: Environment variable naming the default worker count.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable naming the default on-disk cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable naming a sqlite result-store path; when set it
#: takes precedence over ``REPRO_CACHE_DIR`` (see :mod:`repro.store`).
ENV_STORE = "REPRO_STORE"

#: Environment variable naming a directory for per-experiment trace and
#: metrics files (enables observability on CLI runs).
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: Bumped whenever simulator semantics change in a way that invalidates
#: previously cached results.  v2: lazy-scheme follow-on arrivals route
#: through the congestion model (wire_end_ms fix) and results carry
#: observability payload fields.  v3: the ``engine`` config field joins
#: the fingerprint (via ``dataclasses.fields``), GMS putpage keeps
#: shared-copy directory entries intact, and queued background transfers
#: shift their whole arrival schedule (zero-time edge).  v4: results
#: carry the adaptive-policy ``policy_stats`` field and the
#: ``"adaptive"`` meta-scheme joins the registry (repro.policy).  v5:
#: config fingerprints switch from per-field ``repr()`` to the
#: canonical recursive encoding (see :func:`config_fingerprint`), so
#: every pre-v5 key is unreachable by construction.
CACHE_VERSION = 5

#: A ``*.tmp.<pid>`` file older than this is reaped regardless of
#: whether its PID is alive: writers hold temp files for milliseconds,
#: and a dead writer's PID can be recycled by an unrelated live
#: process, so liveness alone would strand the file forever.
STALE_TMP_AGE_S = 3600.0

#: Exceptions a cache/store ``put`` swallows (counting ``puts_failed``)
#: instead of failing the sweep.  I/O failures (``OSError``: disk full,
#: read-only root) and serialization failures (``pickle.PicklingError``
#: and the ``TypeError``/``AttributeError``/``ValueError`` pickle also
#: raises for unpicklable objects, plus ``RecursionError`` and
#: ``MemoryError`` on pathological payloads) all land here: the
#: never-fail contract is about the *sweep*, not the entry.
PUT_FAILURES = (
    OSError,
    pickle.PickleError,
    TypeError,
    AttributeError,
    ValueError,
    RecursionError,
    MemoryError,
)


@dataclass(frozen=True, slots=True)
class TraceRef:
    """A by-name reference to a deterministic synthetic app trace.

    Jobs carrying a ``TraceRef`` instead of a materialized
    :class:`RunTrace` pickle in a few bytes; each worker rebuilds the
    trace locally (generation is deterministic per seed, so results are
    unchanged).
    """

    app: str
    seed: int = 0
    scale: float | None = None

    def materialize(self) -> RunTrace:
        from repro.trace.synth.apps import build_app_trace

        return build_app_trace(self.app, seed=self.seed, scale=self.scale)


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One sweep cell: a trace (or reference/handle) plus a configuration.

    ``key`` identifies the cell in :func:`run_cells`'s result mapping and
    in progress events; it must be unique within a batch and hashable.
    ``trace`` may also be a :class:`~repro.sim.shm.TraceHandle`
    published by a :class:`~repro.sim.shm.SharedTraceArena`.
    """

    key: Any
    trace: RunTrace | TraceRef | TraceHandle
    config: SimulationConfig


@dataclass(frozen=True, slots=True)
class CellEvent:
    """Progress report for one sweep cell.

    ``status`` is ``"done"`` (computed), ``"cached"`` (served from the
    result cache), ``"fallback"`` (computed inline because the payload
    could not be pickled to a worker), ``"retried"`` (computed inline
    after a worker or the pool itself failed mid-batch), or
    ``"batched"`` (computed by the cross-cell batched engine — see
    :func:`run_cells`'s ``batch`` flag).  ``elapsed_s`` is the cell's
    own compute time (zero for cache hits).

    One extra event kind rides the same stream: ``"cache-error"``,
    emitted *in addition to* the cell's completion event when its
    result could not be written through to the cache (see
    :attr:`ResultCache.puts_failed`).
    """

    key: Any
    status: str
    elapsed_s: float


ProgressCallback = Callable[[CellEvent], None]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (defaults to 1 = serial).

    Values below 1 clamp to serial; a malformed value degrades to the
    default with a warning instead of aborting the sweep.
    """
    return env_int(ENV_WORKERS, 1, minimum=1, clamp=True)


def default_cache() -> "ResultCache | None":
    """The result cache the environment asks for (``None`` disables).

    ``REPRO_STORE`` (a sqlite database path) selects the durable
    :class:`repro.store.SqliteResultStore`; otherwise
    ``REPRO_CACHE_DIR`` selects the flat-file :class:`ResultCache`.
    Both implement the same get/put protocol and compute identical
    content keys, so which one serves a sweep never changes its
    results.
    """
    store_path = env_str(ENV_STORE)
    if store_path:
        from repro.store import SqliteResultStore

        return SqliteResultStore(store_path)
    raw = env_str(ENV_CACHE_DIR)
    return ResultCache(raw) if raw else None


# -- content fingerprints ---------------------------------------------------


def trace_fingerprint(trace: RunTrace | TraceRef | TraceHandle) -> str:
    """A stable content fingerprint for a trace, reference, or handle.

    References fingerprint by name/seed/scale (generation is
    deterministic); materialized traces hash their run arrays and
    granularities (cached on the trace — see
    :meth:`RunTrace.fingerprint`); handles carry the fingerprint of the
    trace they were published from, so a cell keys the same whether it
    ships arrays or a handle.
    """
    if isinstance(trace, TraceRef):
        return f"ref:{trace.app}:{trace.seed}:{trace.scale}"
    if isinstance(trace, TraceHandle):
        return trace.fingerprint
    return trace.fingerprint()


def _canonical(value: Any) -> str | None:
    """Canonical type-tagged encoding of one config field value.

    ``repr()`` is not a cache key: dicts encode in insertion order,
    ``1`` and ``1.0`` (or ``True``) collide, and float reprs can drift
    across platforms.  This encoding sorts every mapping and set,
    tags each scalar with its type, and spells floats as exact hex —
    equal values always encode equally, unequal types never collide.
    Returns ``None`` for any type it does not know (live model
    instances, ad-hoc objects): the cell is then not
    content-addressable and must not be cached.
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, str):
        return f"s:{value!r}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"f:{value.hex()}"
    if isinstance(value, bytes):
        return f"b:{value!r}"
    if isinstance(value, dict):
        items = []
        for key, val in value.items():
            ekey, eval_ = _canonical(key), _canonical(val)
            if ekey is None or eval_ is None:
                return None
            items.append(f"{ekey}={eval_}")
        return "d{" + ",".join(sorted(items)) + "}"
    if isinstance(value, (list, tuple)):
        parts = [_canonical(item) for item in value]
        if any(part is None for part in parts):
            return None
        open_, close = ("l[", "]") if isinstance(value, list) else ("t(", ")")
        return open_ + ",".join(parts) + close
    if isinstance(value, (set, frozenset)):
        parts = [_canonical(item) for item in value]
        if any(part is None for part in parts):
            return None
        return "S{" + ",".join(sorted(parts)) + "}"
    return None


def config_fingerprint(config: SimulationConfig) -> str | None:
    """A stable fingerprint of every config field, or ``None``.

    ``None`` means the configuration is not content-addressable (it
    carries live model instances whose behaviour we cannot hash, or a
    value of a type :func:`_canonical` does not cover) and the cell
    must not be cached.  Two equal configs fingerprint equally whatever
    the insertion order of their nested dicts/sets (the encoding is
    canonical — see :func:`_canonical`).
    """
    if not isinstance(config.scheme, str):
        return None
    if config.latency_model is not None or config.disk_model is not None:
        return None
    parts = []
    for f in dataclasses.fields(config):
        encoded = _canonical(getattr(config, f.name))
        if encoded is None:
            return None
        parts.append(f"{f.name}={encoded}")
    return ";".join(parts)


def cell_cache_parts(
    trace: RunTrace | TraceRef | TraceHandle, config: SimulationConfig
) -> "tuple[str, str, str] | None":
    """``(key, trace_fingerprint, config_fingerprint)`` for one cell.

    ``None`` when the cell is uncacheable.  The key hashes
    ``v{CACHE_VERSION}|trace_fp|config_fp``; the store keeps the two
    fingerprints as provenance columns alongside the key.
    """
    cfg_fp = config_fingerprint(config)
    if cfg_fp is None:
        return None
    trace_fp = trace_fingerprint(trace)
    payload = f"v{CACHE_VERSION}|{trace_fp}|{cfg_fp}"
    return hashlib.sha256(payload.encode()).hexdigest(), trace_fp, cfg_fp


def cell_cache_key(
    trace: RunTrace | TraceRef | TraceHandle, config: SimulationConfig
) -> str | None:
    """Content key for one cell, or ``None`` when uncacheable."""
    parts = cell_cache_parts(trace, config)
    return None if parts is None else parts[0]


# -- on-disk result cache ---------------------------------------------------


class ResultCache:
    """Content-keyed on-disk cache of :class:`SimulationResult` pickles.

    Entries live under ``root/<key[:2]>/<key>.pkl``.  Keys hash the full
    cell content (see :func:`cell_cache_key`), so invalidation is
    automatic on any trace or config change; delete the directory to
    clear it wholesale.  Unreadable entries are treated as misses.

    Writes are atomic (``os.replace`` of a per-PID temp file) and never
    fail a sweep: a put that cannot complete — whether the *write*
    failed (disk full, read-only cache dir) or the *serialization* did
    (an unpicklable payload, a ``RecursionError`` or ``MemoryError``
    deep inside ``pickle``) — is counted on ``puts_failed``, leaves no
    temp file behind, and is surfaced to the progress stream as a
    ``"cache-error"`` :class:`CellEvent`.  Temp files a crashed writer
    left behind (``kill -9`` mid-write) are reaped on construction once
    their writing PID is dead, or unconditionally once they are older
    than :data:`STALE_TMP_AGE_S` — a PID number can be recycled by an
    unrelated live process, which must not strand the file forever.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts_failed = 0
        self._reap_stale_tmp()

    def _reap_stale_tmp(self) -> None:
        """Remove ``*.tmp.<pid>`` strandings of dead writer processes.

        A temp file lives for the milliseconds one ``pickle.dump`` +
        ``os.replace`` takes, so anything older than
        :data:`STALE_TMP_AGE_S` is stranded whatever its PID says —
        PID liveness alone keeps a file forever when the dead writer's
        PID has been recycled by an unrelated live process.
        """
        if not self.root.is_dir():
            return
        try:
            candidates = list(self.root.glob("*/*.tmp.*"))
        except OSError:
            return
        now = time.time()
        for tmp in candidates:
            try:
                pid = int(tmp.name.rsplit(".", 1)[-1])
            except ValueError:
                continue
            try:
                fresh = now - tmp.stat().st_mtime < STALE_TMP_AGE_S
            except OSError:
                continue
            if fresh:
                try:
                    if pid == os.getpid() or shm._pid_alive(pid):
                        continue
                except OverflowError:
                    continue
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass

    def key_for(self, job: SweepJob) -> str | None:
        return cell_cache_key(job.trace, job.config)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> SimulationResult | None:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> bool:
        """Write ``result`` through; ``False`` (and a ``puts_failed``
        bump) when the write could not complete.

        Catches serialization failures as well as I/O ones
        (:data:`PUT_FAILURES`): a result that cannot pickle must cost
        the sweep a cache entry, never the sweep.
        """
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except PUT_FAILURES:
            self.puts_failed += 1
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return False
        return True


# -- execution --------------------------------------------------------------


class WorkerPool:
    """A persistent process pool plus a shared-memory trace arena.

    Create one per sweep session (``experiments.common.execution_scope``
    does this when the ambient options ask for workers) and pass it to
    every :func:`run_cells` call: worker processes survive across
    batches — keeping their per-process materialized-trace LRUs warm —
    and each unique trace crosses the process boundary at most once,
    through the arena.  Without a pool, :func:`run_cells` builds a
    transient one per batch, which still gets the arena's zero-copy
    shipping but pays process start-up every time.

    The pool transparently replaces an executor that a worker crash has
    broken, so a failed batch does not poison subsequent ones.
    :meth:`close` shuts the executor down and unlinks the arena's
    segments; the pool is also a context manager.
    """

    def __init__(
        self, workers: int, arena: SharedTraceArena | None = None
    ) -> None:
        self.workers = max(1, int(workers))
        self.arena = SharedTraceArena() if arena is None else arena
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, replacing one a worker crash broke."""
        if self._closed:
            raise ConfigError("WorkerPool is closed")
        if self._executor is not None and getattr(
            self._executor, "_broken", False
        ):
            self.discard_executor()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def discard_executor(self) -> None:
        """Drop the current executor (after a pool-level failure)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def prepare(
        self, trace: RunTrace | TraceRef | TraceHandle
    ) -> RunTrace | TraceRef | TraceHandle:
        """The payload a job should ship: a handle when the arena can.

        References and handles already pickle in a few bytes;
        materialized traces are published to the arena (once per unique
        content) and replaced by their handle.  When the arena is
        disabled or unavailable the original trace is returned and the
        cell falls back to per-cell pickling.
        """
        if isinstance(trace, RunTrace):
            handle = self.arena.publish(trace)
            if handle is not None:
                return handle
        return trace

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
        self.arena.close()


@dataclass(slots=True)
class ExecutionOptions:
    """How sweep cells should be executed (workers, cache, progress).

    ``observe`` is an observability spec applied to every config the
    experiment helpers build (see ``SimulationConfig.observe``);
    ``trace_dir`` asks the CLI to write per-experiment trace/metrics
    files into a directory (``REPRO_TRACE_DIR``), implying
    ``observe="metrics,trace"`` unless set explicitly.  ``pool`` is a
    persistent :class:`WorkerPool` reused across every batch executed
    under these options; whoever sets it owns its lifecycle
    (``experiments.common.execution_scope`` installs and closes one
    automatically when ``workers > 1``).
    """

    workers: int = 1
    cache: ResultCache | None = None
    progress: ProgressCallback | None = None
    observe: str = ""
    trace_dir: str | None = None
    pool: WorkerPool | None = None

    @classmethod
    def from_env(cls) -> "ExecutionOptions":
        trace_dir = os.environ.get(ENV_TRACE_DIR, "").strip() or None
        return cls(
            workers=default_workers(),
            cache=default_cache(),
            observe="metrics,trace" if trace_dir else "",
            trace_dir=trace_dir,
        )


def _materialize(trace: RunTrace | TraceRef | TraceHandle) -> RunTrace:
    """A concrete :class:`RunTrace` for any job payload.

    References and handles materialize through the process-local LRU
    (:func:`repro.sim.shm.cached_trace`), so a worker that sees the same
    trace again — the common case in a sweep — reuses the already-built
    ``RunTrace`` along with its warm column caches.
    """
    if isinstance(trace, TraceRef):
        ref = trace
        return shm.cached_trace(
            trace_fingerprint(ref), lambda: (ref.materialize(), None)
        )
    if isinstance(trace, TraceHandle):
        return shm.cached_trace(trace.fingerprint, trace.attach)
    return trace


def _execute(
    trace: RunTrace | TraceRef | TraceHandle, config: SimulationConfig
) -> tuple[SimulationResult, float]:
    """Worker entry point: simulate one cell, timing the compute."""
    started = time.perf_counter()
    result = simulate(_materialize(trace), config)
    return result, time.perf_counter() - started


def _execute_batch(
    trace: RunTrace | TraceRef | TraceHandle,
    configs: list[SimulationConfig],
) -> list[tuple[SimulationResult, float]]:
    """Worker entry point for one batch unit: all of a trace's cells.

    The trace materializes once through the process-local LRU and every
    configuration runs over it under the cross-cell batched engine
    (:func:`repro.sim.batch.simulate_cells_timed`), sharing its
    :class:`~repro.sim.batch.TraceScan` — which the LRU keeps warm
    across batches, exactly like the column caches.
    """
    from repro.sim.batch import simulate_cells_timed

    return simulate_cells_timed(_materialize(trace), configs)


def _emit(progress: ProgressCallback | None, event: CellEvent) -> None:
    if progress is not None:
        progress(event)


def _write_through(
    cache: "ResultCache | None",
    ckey: str | None,
    result: SimulationResult,
    progress: ProgressCallback | None,
    key: Any,
) -> None:
    """Cache a computed result, surfacing write failures as events."""
    if cache is not None and ckey is not None:
        if not cache.put(ckey, result):
            _emit(progress, CellEvent(key, "cache-error", 0.0))


def _try_pickle(obj: Any) -> bool:
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def _trace_picklable(
    trace: RunTrace | TraceRef | TraceHandle, memo: dict
) -> bool:
    """Whether a trace payload can ship to a worker (memoized by id).

    Handles and references skip the check entirely — they are plain
    dataclasses of primitives.  Identity keying is safe because the
    batch's job list keeps every payload alive for the duration.
    """
    if isinstance(trace, (TraceRef, TraceHandle)):
        return True
    key = ("trace", id(trace))
    trace_ok = memo.get(key)
    if trace_ok is None:
        trace_ok = memo[key] = _try_pickle(trace)
    return trace_ok


def _config_picklable(config: SimulationConfig, memo: dict) -> bool:
    key = ("config", id(config))
    config_ok = memo.get(key)
    if config_ok is None:
        config_ok = memo[key] = _try_pickle(config)
    return config_ok


def _payload_picklable(
    trace: RunTrace | TraceRef | TraceHandle,
    config: SimulationConfig,
    memo: dict,
) -> bool:
    """Whether a (trace, config) payload can ship to a worker.

    ``memo`` is a per-batch cache keyed by object identity: a sweep
    whose 50 cells share one trace pickles it for the check once, not
    50 times.
    """
    return _trace_picklable(trace, memo) and _config_picklable(config, memo)


#: A batch unit: the cells (job + cache key) of one trace-fingerprint
#: group, executed together by the cross-cell batched engine.
BatchGroup = list[tuple[SweepJob, "str | None"]]


#: Floor below which a batch unit is not halved further.  The fused
#: engine's per-unit cost is dominated by the shared pass over the
#: trace — spans, scan probes, and the event heap are walked once for
#: the whole unit, and only the per-lane clock math scales with cell
#: count — so a unit's wall time grows sublinearly in its cells.
#: Halving a small unit therefore duplicates the expensive shared walk
#: across two workers for little parallel win; units of
#: ``MIN_FUSED_UNIT // 2`` cells are the break-even observed on the
#: throughput bench's 24-cell grid.
MIN_FUSED_UNIT = 8


def _split_groups(groups: list[BatchGroup], workers: int) -> list[BatchGroup]:
    """Split batch units so a few big groups can use the whole pool.

    Units are trace-aligned, so a single-trace grid would otherwise
    serialize on one worker; halving the biggest unit until there are
    enough keeps every worker busy while each unit still amortizes its
    trace's shared scan — and, under the fused engine, its shared event
    pass, which is why halving stops at :data:`MIN_FUSED_UNIT` (fused
    units want *many* cells per worker; see docs/PARALLEL.md).  Cells
    keep their original relative order inside each unit.
    """
    units = list(groups)
    while len(units) < workers:
        biggest = max(units, key=len, default=None)
        if biggest is None or len(biggest) < MIN_FUSED_UNIT:
            break
        units.remove(biggest)
        mid = (len(biggest) + 1) // 2
        units.extend((biggest[:mid], biggest[mid:]))
    return units


def _run_pool(
    todo: list[tuple[SweepJob, str | None]],
    pool: WorkerPool,
    cache: ResultCache | None,
    progress: ProgressCallback | None,
    results: dict[Any, SimulationResult],
    groups: list[BatchGroup] | None = None,
) -> tuple[list[tuple[SweepJob, str | None, str]], list[tuple[BatchGroup, str]]]:
    """Run shippable cells and batch units through the pool.

    Futures are collected ``as_completed``, so progress events and cache
    write-through happen as units finish rather than in submission
    order.  Returns ``(cells, groups)`` that still need inline
    execution: cells as ``(job, cache_key, status)`` triples —
    ``"fallback"`` for payloads that could not pickle, ``"retried"``
    for worker or pool failures — and batch units as
    ``(group, status)`` pairs (a group whose *trace* cannot pickle
    stays batched inline rather than degrading to per-cell runs).  A
    batch unit that fails in a worker retries per cell, inline.  When
    the pool itself dies mid-batch, futures that already completed are
    harvested first (their results and cache write-through are kept)
    and only the genuinely unfinished cells re-run inline.
    """
    inline: list[tuple[SweepJob, str | None, str]] = []
    inline_groups: list[tuple[BatchGroup, str]] = []
    shippable: list[tuple[SweepJob, str | None, Any]] = []
    ship_groups: list[tuple[BatchGroup, Any]] = []
    memo: dict = {}
    for job, ckey in todo:
        payload = pool.prepare(job.trace)
        if _payload_picklable(payload, job.config, memo):
            shippable.append((job, ckey, payload))
        else:
            inline.append((job, ckey, "fallback"))
    for group in groups or ():
        payload = pool.prepare(group[0][0].trace)
        if not _trace_picklable(payload, memo):
            inline_groups.append((group, "fallback"))
            continue
        keep = [
            cell for cell in group if _config_picklable(cell[0].config, memo)
        ]
        inline.extend(
            (job, ckey, "fallback")
            for job, ckey in group
            if not _config_picklable(job.config, memo)
        )
        if keep:
            ship_groups.append((keep, payload))
    if not shippable and not ship_groups:
        return inline, inline_groups

    def record(
        job: SweepJob, ckey: str | None, result, elapsed, status: str
    ) -> None:
        results[job.key] = result
        _write_through(cache, ckey, result, progress, job.key)
        _emit(progress, CellEvent(job.key, status, elapsed))

    futures: dict[Any, Any] = {}
    group_futures: list[Any] = [None] * len(ship_groups)
    handled: set[Any] = set()
    handled_groups: set[int] = set()
    try:
        executor = pool.executor()
        fut_to_unit: dict[Any, tuple[str, Any]] = {}
        for job, ckey, payload in shippable:
            future = executor.submit(_execute, payload, job.config)
            futures[job.key] = future
            fut_to_unit[future] = ("cell", (job, ckey))
        for index, (group, payload) in enumerate(ship_groups):
            future = executor.submit(
                _execute_batch, payload, [job.config for job, _ in group]
            )
            group_futures[index] = future
            fut_to_unit[future] = ("group", index)
        for future in as_completed(fut_to_unit):
            kind, unit = fut_to_unit[future]
            if kind == "cell":
                job, ckey = unit
                handled.add(job.key)
                try:
                    result, elapsed = future.result()
                except Exception:
                    inline.append((job, ckey, "retried"))
                else:
                    record(job, ckey, result, elapsed, "done")
            else:
                group, _ = ship_groups[unit]
                handled_groups.add(unit)
                try:
                    pairs = future.result()
                except Exception:
                    inline.extend(
                        (job, ckey, "retried") for job, ckey in group
                    )
                else:
                    for (job, ckey), (result, elapsed) in zip(group, pairs):
                        record(job, ckey, result, elapsed, "batched")
    except Exception:
        # The pool itself failed (fork unavailable, broken worker
        # teardown, ...).  Keep every result a worker already produced —
        # including its cache write-through — and run the rest inline.
        pool.discard_executor()
        for job, ckey, _ in shippable:
            if job.key in handled:
                continue
            future = futures.get(job.key)
            if (
                future is not None
                and future.done()
                and not future.cancelled()
            ):
                try:
                    result, elapsed = future.result()
                except Exception:
                    pass
                else:
                    record(job, ckey, result, elapsed, "done")
                    continue
            if future is not None:
                future.cancel()
            inline.append((job, ckey, "retried"))
        for index, (group, _) in enumerate(ship_groups):
            if index in handled_groups:
                continue
            future = group_futures[index]
            if (
                future is not None
                and future.done()
                and not future.cancelled()
            ):
                try:
                    pairs = future.result()
                except Exception:
                    pass
                else:
                    for (job, ckey), (result, elapsed) in zip(group, pairs):
                        record(job, ckey, result, elapsed, "batched")
                    continue
            if future is not None:
                future.cancel()
            inline.extend((job, ckey, "retried") for job, ckey in group)
    return inline, inline_groups


def run_cells(
    jobs: Iterable[SweepJob],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    metrics: Any | None = None,
    pool: WorkerPool | None = None,
    batch: bool = False,
) -> dict[Any, SimulationResult]:
    """Execute sweep cells, in parallel when asked, returning by key.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 1), or takes the
    worker count of ``pool`` when one is given; ``workers<=1`` runs
    inline.  When a ``cache`` is given, cacheable cells are served from
    it and newly computed results are written through.  Every cell
    reports exactly one completion :class:`CellEvent` to ``progress``
    (plus a ``"cache-error"`` event when its write-through failed).
    ``metrics`` may be a :class:`repro.obs.metrics.MetricsRegistry`:
    each cell whose config enabled metrics collection merges its
    registry into it (cache hits included), giving a batch-wide view.

    ``pool`` is a persistent :class:`WorkerPool` to execute on; without
    one, a transient pool (own arena, own worker processes) is built for
    the batch and closed afterwards.  Either way, traces are published
    to the pool's shared-memory arena and jobs ship
    :class:`~repro.sim.shm.TraceHandle` payloads when the platform
    allows, falling back to per-cell pickling when it does not.

    ``batch=True`` routes eligible cells through the cross-cell batched
    engine (:mod:`repro.sim.batch`): cells passing
    :func:`~repro.sim.batch.batch_eligible` are grouped by trace
    fingerprint, and each group of two or more simulates in one pass
    over its trace's shared scan — as one unit per worker under a pool
    (so a worker batches all the cells of its shared-memory trace), or
    inline otherwise — reporting ``"batched"`` events.  Ineligible
    cells (instrumented, adaptive, uncacheable model instances, ...)
    and singleton groups keep the ordinary per-cell dispatch, and a
    batch unit that fails retries per cell, so ``batch=True`` is always
    safe to request.

    Results are identical to running :func:`simulate` serially on each
    cell in job order, whatever the worker count, shipping path, or
    ``batch`` setting; the returned dict is in job order even though
    pooled cells complete out of order.
    """
    jobs = list(jobs)
    seen: set[Any] = set()
    for job in jobs:
        if job.key in seen:
            raise ConfigError(f"duplicate sweep cell key {job.key!r}")
        seen.add(job.key)
    if workers is None:
        workers = (
            pool.workers if pool is not None and not pool.closed
            else default_workers()
        )

    results: dict[Any, SimulationResult] = {}
    todo: list[tuple[SweepJob, str | None]] = []
    for job in jobs:
        ckey = cache.key_for(job) if cache is not None else None
        if ckey is not None:
            hit = cache.get(ckey)
            if hit is not None:
                results[job.key] = hit
                _emit(progress, CellEvent(job.key, "cached", 0.0))
                continue
        todo.append((job, ckey))

    groups: list[BatchGroup] = []
    if batch and todo:
        from repro.sim.batch import batch_eligible

        singles: list[tuple[SweepJob, str | None]] = []
        by_trace: dict[str, BatchGroup] = {}
        for job, ckey in todo:
            if batch_eligible(job.config):
                by_trace.setdefault(
                    trace_fingerprint(job.trace), []
                ).append((job, ckey))
            else:
                singles.append((job, ckey))
        for cells in by_trace.values():
            if len(cells) >= 2:
                groups.append(cells)
            else:
                singles.extend(cells)
        todo = singles

    remaining: list[tuple[SweepJob, str | None, str]]
    inline_groups: list[tuple[BatchGroup, str]]
    if workers > 1 and len(todo) + sum(len(g) for g in groups) > 1:
        owned: WorkerPool | None = None
        if pool is None or pool.closed:
            pool = owned = WorkerPool(workers)
        try:
            remaining, inline_groups = _run_pool(
                todo, pool, cache, progress, results,
                groups=_split_groups(groups, pool.workers),
            )
        finally:
            if owned is not None:
                owned.close()
    else:
        remaining = [(job, ckey, "done") for job, ckey in todo]
        inline_groups = [(group, "batched") for group in groups]
    for group, status in inline_groups:
        try:
            pairs = _execute_batch(
                group[0][0].trace, [job.config for job, _ in group]
            )
        except Exception:
            remaining.extend((job, ckey, "retried") for job, ckey in group)
        else:
            for (job, ckey), (result, elapsed) in zip(group, pairs):
                results[job.key] = result
                _write_through(cache, ckey, result, progress, job.key)
                _emit(progress, CellEvent(job.key, status, elapsed))
    for job, ckey, status in remaining:
        result, elapsed = _execute(job.trace, job.config)
        results[job.key] = result
        _write_through(cache, ckey, result, progress, job.key)
        _emit(progress, CellEvent(job.key, status, elapsed))
    ordered = {job.key: results[job.key] for job in jobs}
    if metrics is not None:
        for result in ordered.values():
            payload = getattr(result, "metrics", None)
            if payload:
                metrics.merge_dict(payload)
    return ordered
