"""Parallel sweep execution: fan sweep cells out over worker processes.

The paper's results are grids — Figure 3 sweeps subpage size x memory
size, Figure 9 sweeps applications x schemes — and every cell is an
independent :func:`~repro.sim.simulator.simulate` call.  This module is
the execution substrate those grids (and any future, larger studies) run
on:

* :func:`run_cells` fans a list of :class:`SweepJob` cells out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Cells whose payload does
  not pickle (e.g. a config holding an ad-hoc latency-model instance)
  transparently fall back to inline execution, as does the whole batch
  when ``workers <= 1`` — so results are always bit-identical to a
  serial run (the simulator is deterministic and shares no state across
  cells).
* :class:`WorkerPool` is the persistent execution substrate: a
  long-lived process pool plus a
  :class:`~repro.sim.shm.SharedTraceArena` that publishes each unique
  trace's arrays into shared memory once, so jobs ship a tiny
  :class:`~repro.sim.shm.TraceHandle` instead of pickling the arrays
  per cell.  ``experiments.common.execution_scope`` creates one pool
  and reuses it across every ``run_cells`` batch in the scope.
* :class:`ResultCache` is a content-keyed on-disk cache: a cell's key
  hashes the trace fingerprint (array contents + granularities) together
  with every configuration field, so re-running an experiment skips
  completed cells and any input change misses cleanly.
* :class:`CellEvent` progress callbacks report per-cell status and
  timing; ``python -m repro.experiments --progress`` surfaces them.
  Pooled cells are collected ``as_completed``, so events and cache
  write-through happen as cells finish, not in submission order.

Environment knobs: ``REPRO_WORKERS`` sets the default worker count,
``REPRO_CACHE_DIR`` enables (and locates) the default result cache, and
``REPRO_SHM`` controls the shared-memory arena (see
:mod:`repro.sim.shm`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ConfigError
from repro.sim import shm
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.shm import SharedTraceArena, TraceHandle
from repro.sim.simulator import simulate
from repro.trace.compress import RunTrace

#: Environment variable naming the default worker count.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable naming the default on-disk cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable naming a directory for per-experiment trace and
#: metrics files (enables observability on CLI runs).
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: Bumped whenever simulator semantics change in a way that invalidates
#: previously cached results.  v2: lazy-scheme follow-on arrivals route
#: through the congestion model (wire_end_ms fix) and results carry
#: observability payload fields.  v3: the ``engine`` config field joins
#: the fingerprint (via ``dataclasses.fields``), GMS putpage keeps
#: shared-copy directory entries intact, and queued background transfers
#: shift their whole arrival schedule (zero-time edge).  v4: results
#: carry the adaptive-policy ``policy_stats`` field and the
#: ``"adaptive"`` meta-scheme joins the registry (repro.policy).
CACHE_VERSION = 4


@dataclass(frozen=True, slots=True)
class TraceRef:
    """A by-name reference to a deterministic synthetic app trace.

    Jobs carrying a ``TraceRef`` instead of a materialized
    :class:`RunTrace` pickle in a few bytes; each worker rebuilds the
    trace locally (generation is deterministic per seed, so results are
    unchanged).
    """

    app: str
    seed: int = 0
    scale: float | None = None

    def materialize(self) -> RunTrace:
        from repro.trace.synth.apps import build_app_trace

        return build_app_trace(self.app, seed=self.seed, scale=self.scale)


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One sweep cell: a trace (or reference/handle) plus a configuration.

    ``key`` identifies the cell in :func:`run_cells`'s result mapping and
    in progress events; it must be unique within a batch and hashable.
    ``trace`` may also be a :class:`~repro.sim.shm.TraceHandle`
    published by a :class:`~repro.sim.shm.SharedTraceArena`.
    """

    key: Any
    trace: RunTrace | TraceRef | TraceHandle
    config: SimulationConfig


@dataclass(frozen=True, slots=True)
class CellEvent:
    """Progress report for one sweep cell.

    ``status`` is ``"done"`` (computed), ``"cached"`` (served from the
    result cache), ``"fallback"`` (computed inline because the payload
    could not be pickled to a worker), or ``"retried"`` (computed inline
    after a worker or the pool itself failed mid-batch).  ``elapsed_s``
    is the cell's own compute time (zero for cache hits).
    """

    key: Any
    status: str
    elapsed_s: float


ProgressCallback = Callable[[CellEvent], None]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (defaults to 1 = serial)."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{ENV_WORKERS} must be an integer, got {raw!r}"
        ) from None
    return max(1, workers)


def default_cache() -> "ResultCache | None":
    """Cache from ``REPRO_CACHE_DIR`` (``None`` disables caching)."""
    raw = os.environ.get(ENV_CACHE_DIR, "").strip()
    return ResultCache(raw) if raw else None


# -- content fingerprints ---------------------------------------------------


def trace_fingerprint(trace: RunTrace | TraceRef | TraceHandle) -> str:
    """A stable content fingerprint for a trace, reference, or handle.

    References fingerprint by name/seed/scale (generation is
    deterministic); materialized traces hash their run arrays and
    granularities (cached on the trace — see
    :meth:`RunTrace.fingerprint`); handles carry the fingerprint of the
    trace they were published from, so a cell keys the same whether it
    ships arrays or a handle.
    """
    if isinstance(trace, TraceRef):
        return f"ref:{trace.app}:{trace.seed}:{trace.scale}"
    if isinstance(trace, TraceHandle):
        return trace.fingerprint
    return trace.fingerprint()


def config_fingerprint(config: SimulationConfig) -> str | None:
    """A stable fingerprint of every config field, or ``None``.

    ``None`` means the configuration is not content-addressable (it
    carries live model instances whose behaviour we cannot hash) and the
    cell must not be cached.
    """
    if not isinstance(config.scheme, str):
        return None
    if config.latency_model is not None or config.disk_model is not None:
        return None
    parts = []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "scheme_kwargs":
            value = tuple(sorted(value.items()))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def cell_cache_key(
    trace: RunTrace | TraceRef | TraceHandle, config: SimulationConfig
) -> str | None:
    """Content key for one cell, or ``None`` when uncacheable."""
    cfg_fp = config_fingerprint(config)
    if cfg_fp is None:
        return None
    payload = f"v{CACHE_VERSION}|{trace_fingerprint(trace)}|{cfg_fp}"
    return hashlib.sha256(payload.encode()).hexdigest()


# -- on-disk result cache ---------------------------------------------------


class ResultCache:
    """Content-keyed on-disk cache of :class:`SimulationResult` pickles.

    Entries live under ``root/<key[:2]>/<key>.pkl``.  Keys hash the full
    cell content (see :func:`cell_cache_key`), so invalidation is
    automatic on any trace or config change; delete the directory to
    clear it wholesale.  Unreadable entries are treated as misses.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, job: SweepJob) -> str | None:
        return cell_cache_key(job.trace, job.config)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> SimulationResult | None:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)


# -- execution --------------------------------------------------------------


class WorkerPool:
    """A persistent process pool plus a shared-memory trace arena.

    Create one per sweep session (``experiments.common.execution_scope``
    does this when the ambient options ask for workers) and pass it to
    every :func:`run_cells` call: worker processes survive across
    batches — keeping their per-process materialized-trace LRUs warm —
    and each unique trace crosses the process boundary at most once,
    through the arena.  Without a pool, :func:`run_cells` builds a
    transient one per batch, which still gets the arena's zero-copy
    shipping but pays process start-up every time.

    The pool transparently replaces an executor that a worker crash has
    broken, so a failed batch does not poison subsequent ones.
    :meth:`close` shuts the executor down and unlinks the arena's
    segments; the pool is also a context manager.
    """

    def __init__(
        self, workers: int, arena: SharedTraceArena | None = None
    ) -> None:
        self.workers = max(1, int(workers))
        self.arena = SharedTraceArena() if arena is None else arena
        self._executor: ProcessPoolExecutor | None = None
        self._closed = False

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, replacing one a worker crash broke."""
        if self._closed:
            raise ConfigError("WorkerPool is closed")
        if self._executor is not None and getattr(
            self._executor, "_broken", False
        ):
            self.discard_executor()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def discard_executor(self) -> None:
        """Drop the current executor (after a pool-level failure)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass

    def prepare(
        self, trace: RunTrace | TraceRef | TraceHandle
    ) -> RunTrace | TraceRef | TraceHandle:
        """The payload a job should ship: a handle when the arena can.

        References and handles already pickle in a few bytes;
        materialized traces are published to the arena (once per unique
        content) and replaced by their handle.  When the arena is
        disabled or unavailable the original trace is returned and the
        cell falls back to per-cell pickling.
        """
        if isinstance(trace, RunTrace):
            handle = self.arena.publish(trace)
            if handle is not None:
                return handle
        return trace

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        executor, self._executor = self._executor, None
        if executor is not None:
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except Exception:
                pass
        self.arena.close()


@dataclass(slots=True)
class ExecutionOptions:
    """How sweep cells should be executed (workers, cache, progress).

    ``observe`` is an observability spec applied to every config the
    experiment helpers build (see ``SimulationConfig.observe``);
    ``trace_dir`` asks the CLI to write per-experiment trace/metrics
    files into a directory (``REPRO_TRACE_DIR``), implying
    ``observe="metrics,trace"`` unless set explicitly.  ``pool`` is a
    persistent :class:`WorkerPool` reused across every batch executed
    under these options; whoever sets it owns its lifecycle
    (``experiments.common.execution_scope`` installs and closes one
    automatically when ``workers > 1``).
    """

    workers: int = 1
    cache: ResultCache | None = None
    progress: ProgressCallback | None = None
    observe: str = ""
    trace_dir: str | None = None
    pool: WorkerPool | None = None

    @classmethod
    def from_env(cls) -> "ExecutionOptions":
        trace_dir = os.environ.get(ENV_TRACE_DIR, "").strip() or None
        return cls(
            workers=default_workers(),
            cache=default_cache(),
            observe="metrics,trace" if trace_dir else "",
            trace_dir=trace_dir,
        )


def _execute(
    trace: RunTrace | TraceRef | TraceHandle, config: SimulationConfig
) -> tuple[SimulationResult, float]:
    """Worker entry point: simulate one cell, timing the compute.

    References and handles materialize through the process-local LRU
    (:func:`repro.sim.shm.cached_trace`), so a worker that sees the same
    trace again — the common case in a sweep — reuses the already-built
    ``RunTrace`` along with its warm column caches.
    """
    started = time.perf_counter()
    if isinstance(trace, TraceRef):
        ref = trace
        trace = shm.cached_trace(
            trace_fingerprint(ref), lambda: (ref.materialize(), None)
        )
    elif isinstance(trace, TraceHandle):
        trace = shm.cached_trace(trace.fingerprint, trace.attach)
    result = simulate(trace, config)
    return result, time.perf_counter() - started


def _emit(progress: ProgressCallback | None, event: CellEvent) -> None:
    if progress is not None:
        progress(event)


def _try_pickle(obj: Any) -> bool:
    try:
        pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return False
    return True


def _payload_picklable(
    trace: RunTrace | TraceRef | TraceHandle,
    config: SimulationConfig,
    memo: dict,
) -> bool:
    """Whether a (trace, config) payload can ship to a worker.

    ``memo`` is a per-batch cache keyed by object identity: a sweep
    whose 50 cells share one trace pickles it for the check once, not
    50 times (and handles/references skip the check entirely — they are
    plain dataclasses of primitives).  Identity keying is safe because
    the batch's job list keeps every payload alive for the duration.
    """
    if isinstance(trace, (TraceRef, TraceHandle)):
        trace_ok = True
    else:
        key = ("trace", id(trace))
        trace_ok = memo.get(key)
        if trace_ok is None:
            trace_ok = memo[key] = _try_pickle(trace)
    if not trace_ok:
        return False
    key = ("config", id(config))
    config_ok = memo.get(key)
    if config_ok is None:
        config_ok = memo[key] = _try_pickle(config)
    return config_ok


def _run_pool(
    todo: list[tuple[SweepJob, str | None]],
    pool: WorkerPool,
    cache: ResultCache | None,
    progress: ProgressCallback | None,
    results: dict[Any, SimulationResult],
) -> list[tuple[SweepJob, str | None, str]]:
    """Run shippable cells through the pool, filling ``results``.

    Futures are collected ``as_completed``, so progress events and cache
    write-through happen as cells finish rather than in submission
    order.  Returns the cells that still need inline execution as
    ``(job, cache_key, status)`` triples — ``"fallback"`` for payloads
    that could not pickle, ``"retried"`` for worker or pool failures.
    When the pool itself dies mid-batch, futures that already completed
    are harvested first (their results and cache write-through are kept)
    and only the genuinely unfinished cells re-run inline.
    """
    inline: list[tuple[SweepJob, str | None, str]] = []
    shippable: list[tuple[SweepJob, str | None, Any]] = []
    memo: dict = {}
    for job, ckey in todo:
        payload = pool.prepare(job.trace)
        if _payload_picklable(payload, job.config, memo):
            shippable.append((job, ckey, payload))
        else:
            inline.append((job, ckey, "fallback"))
    if not shippable:
        return inline

    def record(job: SweepJob, ckey: str | None, result, elapsed) -> None:
        results[job.key] = result
        if cache is not None and ckey is not None:
            cache.put(ckey, result)
        _emit(progress, CellEvent(job.key, "done", elapsed))

    futures: dict[Any, Any] = {}
    handled: set[Any] = set()
    try:
        executor = pool.executor()
        fut_to_cell = {}
        for job, ckey, payload in shippable:
            future = executor.submit(_execute, payload, job.config)
            futures[job.key] = future
            fut_to_cell[future] = (job, ckey)
        for future in as_completed(fut_to_cell):
            job, ckey = fut_to_cell[future]
            handled.add(job.key)
            try:
                result, elapsed = future.result()
            except Exception:
                inline.append((job, ckey, "retried"))
            else:
                record(job, ckey, result, elapsed)
    except Exception:
        # The pool itself failed (fork unavailable, broken worker
        # teardown, ...).  Keep every result a worker already produced —
        # including its cache write-through — and run the rest inline.
        pool.discard_executor()
        for job, ckey, _ in shippable:
            if job.key in handled:
                continue
            future = futures.get(job.key)
            if (
                future is not None
                and future.done()
                and not future.cancelled()
            ):
                try:
                    result, elapsed = future.result()
                except Exception:
                    pass
                else:
                    record(job, ckey, result, elapsed)
                    continue
            if future is not None:
                future.cancel()
            inline.append((job, ckey, "retried"))
    return inline


def run_cells(
    jobs: Iterable[SweepJob],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    metrics: Any | None = None,
    pool: WorkerPool | None = None,
) -> dict[Any, SimulationResult]:
    """Execute sweep cells, in parallel when asked, returning by key.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 1), or takes the
    worker count of ``pool`` when one is given; ``workers<=1`` runs
    inline.  When a ``cache`` is given, cacheable cells are served from
    it and newly computed results are written through.  Every cell
    reports exactly one :class:`CellEvent` to ``progress``.  ``metrics``
    may be a :class:`repro.obs.metrics.MetricsRegistry`: each cell whose
    config enabled metrics collection merges its registry into it (cache
    hits included), giving a batch-wide view.

    ``pool`` is a persistent :class:`WorkerPool` to execute on; without
    one, a transient pool (own arena, own worker processes) is built for
    the batch and closed afterwards.  Either way, traces are published
    to the pool's shared-memory arena and jobs ship
    :class:`~repro.sim.shm.TraceHandle` payloads when the platform
    allows, falling back to per-cell pickling when it does not.

    Results are identical to running :func:`simulate` serially on each
    cell in job order, whatever the worker count or shipping path; the
    returned dict is in job order even though pooled cells complete out
    of order.
    """
    jobs = list(jobs)
    seen: set[Any] = set()
    for job in jobs:
        if job.key in seen:
            raise ConfigError(f"duplicate sweep cell key {job.key!r}")
        seen.add(job.key)
    if workers is None:
        workers = (
            pool.workers if pool is not None and not pool.closed
            else default_workers()
        )

    results: dict[Any, SimulationResult] = {}
    todo: list[tuple[SweepJob, str | None]] = []
    for job in jobs:
        ckey = cache.key_for(job) if cache is not None else None
        if ckey is not None:
            hit = cache.get(ckey)
            if hit is not None:
                results[job.key] = hit
                _emit(progress, CellEvent(job.key, "cached", 0.0))
                continue
        todo.append((job, ckey))

    remaining: list[tuple[SweepJob, str | None, str]]
    if workers > 1 and len(todo) > 1:
        owned: WorkerPool | None = None
        if pool is None or pool.closed:
            pool = owned = WorkerPool(workers)
        try:
            remaining = _run_pool(todo, pool, cache, progress, results)
        finally:
            if owned is not None:
                owned.close()
    else:
        remaining = [(job, ckey, "done") for job, ckey in todo]
    for job, ckey, status in remaining:
        result, elapsed = _execute(job.trace, job.config)
        results[job.key] = result
        if cache is not None and ckey is not None:
            cache.put(ckey, result)
        _emit(progress, CellEvent(job.key, status, elapsed))
    ordered = {job.key: results[job.key] for job in jobs}
    if metrics is not None:
        for result in ordered.values():
            payload = getattr(result, "metrics", None)
            if payload:
                metrics.merge_dict(payload)
    return ordered
