"""Parallel sweep execution: fan sweep cells out over worker processes.

The paper's results are grids — Figure 3 sweeps subpage size x memory
size, Figure 9 sweeps applications x schemes — and every cell is an
independent :func:`~repro.sim.simulator.simulate` call.  This module is
the execution substrate those grids (and any future, larger studies) run
on:

* :func:`run_cells` fans a list of :class:`SweepJob` cells out to a
  ``concurrent.futures.ProcessPoolExecutor``.  Cells whose payload does
  not pickle (e.g. a config holding an ad-hoc latency-model instance)
  transparently fall back to inline execution, as does the whole batch
  when ``workers <= 1`` — so results are always bit-identical to a
  serial run (the simulator is deterministic and shares no state across
  cells).
* :class:`ResultCache` is a content-keyed on-disk cache: a cell's key
  hashes the trace fingerprint (array contents + granularities) together
  with every configuration field, so re-running an experiment skips
  completed cells and any input change misses cleanly.
* :class:`CellEvent` progress callbacks report per-cell status and
  timing; ``python -m repro.experiments --progress`` surfaces them.

Environment knobs: ``REPRO_WORKERS`` sets the default worker count and
``REPRO_CACHE_DIR`` enables (and locates) the default result cache.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import ConfigError
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.compress import RunTrace

#: Environment variable naming the default worker count.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable naming the default on-disk cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Environment variable naming a directory for per-experiment trace and
#: metrics files (enables observability on CLI runs).
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

#: Bumped whenever simulator semantics change in a way that invalidates
#: previously cached results.  v2: lazy-scheme follow-on arrivals route
#: through the congestion model (wire_end_ms fix) and results carry
#: observability payload fields.  v3: the ``engine`` config field joins
#: the fingerprint (via ``dataclasses.fields``), GMS putpage keeps
#: shared-copy directory entries intact, and queued background transfers
#: shift their whole arrival schedule (zero-time edge).
CACHE_VERSION = 3


@dataclass(frozen=True, slots=True)
class TraceRef:
    """A by-name reference to a deterministic synthetic app trace.

    Jobs carrying a ``TraceRef`` instead of a materialized
    :class:`RunTrace` pickle in a few bytes; each worker rebuilds the
    trace locally (generation is deterministic per seed, so results are
    unchanged).
    """

    app: str
    seed: int = 0
    scale: float | None = None

    def materialize(self) -> RunTrace:
        from repro.trace.synth.apps import build_app_trace

        return build_app_trace(self.app, seed=self.seed, scale=self.scale)


@dataclass(frozen=True, slots=True)
class SweepJob:
    """One sweep cell: a trace (or reference) plus a configuration.

    ``key`` identifies the cell in :func:`run_cells`'s result mapping and
    in progress events; it must be unique within a batch and hashable.
    """

    key: Any
    trace: RunTrace | TraceRef
    config: SimulationConfig


@dataclass(frozen=True, slots=True)
class CellEvent:
    """Progress report for one sweep cell.

    ``status`` is ``"done"`` (computed), ``"cached"`` (served from the
    result cache), or ``"fallback"`` (computed inline after the parallel
    path could not take it).  ``elapsed_s`` is the cell's own compute
    time (zero for cache hits).
    """

    key: Any
    status: str
    elapsed_s: float


ProgressCallback = Callable[[CellEvent], None]


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS`` (defaults to 1 = serial)."""
    raw = os.environ.get(ENV_WORKERS, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigError(
            f"{ENV_WORKERS} must be an integer, got {raw!r}"
        ) from None
    return max(1, workers)


def default_cache() -> "ResultCache | None":
    """Cache from ``REPRO_CACHE_DIR`` (``None`` disables caching)."""
    raw = os.environ.get(ENV_CACHE_DIR, "").strip()
    return ResultCache(raw) if raw else None


# -- content fingerprints ---------------------------------------------------


def trace_fingerprint(trace: RunTrace | TraceRef) -> str:
    """A stable content fingerprint for a trace or trace reference.

    References fingerprint by name/seed/scale (generation is
    deterministic); materialized traces hash their run arrays and
    granularities.
    """
    if isinstance(trace, TraceRef):
        return f"ref:{trace.app}:{trace.seed}:{trace.scale}"
    digest = hashlib.sha256()
    for arr in (trace.pages, trace.blocks, trace.counts, trace.writes):
        digest.update(arr.tobytes())
    meta = (
        f"{trace.page_bytes}:{trace.block_bytes}:{trace.dilation}:"
        f"{trace.name}"
    )
    digest.update(meta.encode())
    return f"sha:{digest.hexdigest()}"


def config_fingerprint(config: SimulationConfig) -> str | None:
    """A stable fingerprint of every config field, or ``None``.

    ``None`` means the configuration is not content-addressable (it
    carries live model instances whose behaviour we cannot hash) and the
    cell must not be cached.
    """
    if not isinstance(config.scheme, str):
        return None
    if config.latency_model is not None or config.disk_model is not None:
        return None
    parts = []
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if f.name == "scheme_kwargs":
            value = tuple(sorted(value.items()))
        parts.append(f"{f.name}={value!r}")
    return ";".join(parts)


def cell_cache_key(
    trace: RunTrace | TraceRef, config: SimulationConfig
) -> str | None:
    """Content key for one cell, or ``None`` when uncacheable."""
    cfg_fp = config_fingerprint(config)
    if cfg_fp is None:
        return None
    payload = f"v{CACHE_VERSION}|{trace_fingerprint(trace)}|{cfg_fp}"
    return hashlib.sha256(payload.encode()).hexdigest()


# -- on-disk result cache ---------------------------------------------------


class ResultCache:
    """Content-keyed on-disk cache of :class:`SimulationResult` pickles.

    Entries live under ``root/<key[:2]>/<key>.pkl``.  Keys hash the full
    cell content (see :func:`cell_cache_key`), so invalidation is
    automatic on any trace or config change; delete the directory to
    clear it wholesale.  Unreadable entries are treated as misses.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(self, job: SweepJob) -> str | None:
        return cell_cache_key(job.trace, job.config)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> SimulationResult | None:
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        if not isinstance(result, SimulationResult):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimulationResult) -> None:
        path = self._path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)


# -- execution --------------------------------------------------------------


@dataclass(slots=True)
class ExecutionOptions:
    """How sweep cells should be executed (workers, cache, progress).

    ``observe`` is an observability spec applied to every config the
    experiment helpers build (see ``SimulationConfig.observe``);
    ``trace_dir`` asks the CLI to write per-experiment trace/metrics
    files into a directory (``REPRO_TRACE_DIR``), implying
    ``observe="metrics,trace"`` unless set explicitly.
    """

    workers: int = 1
    cache: ResultCache | None = None
    progress: ProgressCallback | None = None
    observe: str = ""
    trace_dir: str | None = None

    @classmethod
    def from_env(cls) -> "ExecutionOptions":
        trace_dir = os.environ.get(ENV_TRACE_DIR, "").strip() or None
        return cls(
            workers=default_workers(),
            cache=default_cache(),
            observe="metrics,trace" if trace_dir else "",
            trace_dir=trace_dir,
        )


def _execute(
    trace: RunTrace | TraceRef, config: SimulationConfig
) -> tuple[SimulationResult, float]:
    """Worker entry point: simulate one cell, timing the compute."""
    started = time.perf_counter()
    if isinstance(trace, TraceRef):
        trace = trace.materialize()
    result = simulate(trace, config)
    return result, time.perf_counter() - started


def _emit(progress: ProgressCallback | None, event: CellEvent) -> None:
    if progress is not None:
        progress(event)


def _picklable(job: SweepJob) -> bool:
    try:
        pickle.dumps(
            (job.trace, job.config), protocol=pickle.HIGHEST_PROTOCOL
        )
    except Exception:
        return False
    return True


def _run_pool(
    todo: list[tuple[SweepJob, str | None]],
    workers: int,
    cache: ResultCache | None,
    progress: ProgressCallback | None,
    results: dict[Any, SimulationResult],
) -> list[tuple[SweepJob, str | None]]:
    """Run picklable cells in a process pool, filling ``results``.

    Returns the cells that still need inline execution (unpicklable
    payloads, worker failures, or a broken pool).
    """
    fallback, shippable = [], []
    for entry in todo:
        (shippable if _picklable(entry[0]) else fallback).append(entry)
    if not shippable:
        return fallback
    try:
        max_workers = min(workers, len(shippable))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [
                (job, ckey, pool.submit(_execute, job.trace, job.config))
                for job, ckey in shippable
            ]
            for job, ckey, future in futures:
                try:
                    result, elapsed = future.result()
                except Exception:
                    fallback.append((job, ckey))
                    continue
                results[job.key] = result
                if cache is not None and ckey is not None:
                    cache.put(ckey, result)
                _emit(progress, CellEvent(job.key, "done", elapsed))
    except Exception:
        # The pool itself failed (fork unavailable, interpreter teardown,
        # ...): whatever did not finish runs inline.
        fallback.extend(
            entry for entry in shippable if entry[0].key not in results
        )
    return fallback


def run_cells(
    jobs: Iterable[SweepJob],
    workers: int | None = None,
    cache: ResultCache | None = None,
    progress: ProgressCallback | None = None,
    metrics: Any | None = None,
) -> dict[Any, SimulationResult]:
    """Execute sweep cells, in parallel when asked, returning by key.

    ``workers=None`` reads ``REPRO_WORKERS`` (default 1); ``workers<=1``
    runs inline.  When a ``cache`` is given, cacheable cells are served
    from it and newly computed results are written through.  Every cell
    reports a :class:`CellEvent` to ``progress``.  ``metrics`` may be a
    :class:`repro.obs.metrics.MetricsRegistry`: each cell whose config
    enabled metrics collection merges its registry into it (cache hits
    included), giving a batch-wide view.

    Results are identical to running :func:`simulate` serially on each
    cell in job order, whatever the worker count.
    """
    jobs = list(jobs)
    seen: set[Any] = set()
    for job in jobs:
        if job.key in seen:
            raise ConfigError(f"duplicate sweep cell key {job.key!r}")
        seen.add(job.key)
    if workers is None:
        workers = default_workers()

    results: dict[Any, SimulationResult] = {}
    todo: list[tuple[SweepJob, str | None]] = []
    for job in jobs:
        ckey = cache.key_for(job) if cache is not None else None
        if ckey is not None:
            hit = cache.get(ckey)
            if hit is not None:
                results[job.key] = hit
                _emit(progress, CellEvent(job.key, "cached", 0.0))
                continue
        todo.append((job, ckey))

    if workers > 1 and len(todo) > 1:
        remaining = _run_pool(todo, workers, cache, progress, results)
        inline_status = "fallback"
    else:
        remaining = todo
        inline_status = "done"
    for job, ckey in remaining:
        result, elapsed = _execute(job.trace, job.config)
        results[job.key] = result
        if cache is not None and ckey is not None:
            cache.put(ckey, result)
        _emit(progress, CellEvent(job.key, inline_status, elapsed))
    ordered = {job.key: results[job.key] for job in jobs}
    if metrics is not None:
        for result in ordered.values():
            payload = getattr(result, "metrics", None)
            if payload:
                metrics.merge_dict(payload)
    return ordered
