"""Scheme comparisons: speedups and component deltas between runs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.compress import RunTrace


@dataclass(frozen=True, slots=True)
class SchemeComparison:
    """A candidate run against its baseline."""

    baseline: SimulationResult
    candidate: SimulationResult

    @property
    def speedup(self) -> float:
        return self.candidate.speedup_vs(self.baseline)

    @property
    def improvement(self) -> float:
        """Fractional runtime reduction (the paper's "% improvement")."""
        return self.candidate.improvement_vs(self.baseline)

    @property
    def page_wait_reduction(self) -> float:
        """Fractional page_wait reduction (Figure 8's headline: -42%)."""
        base = self.baseline.components.page_wait_ms
        if base <= 0:
            return 0.0
        return 1.0 - self.candidate.components.page_wait_ms / base

    def component_deltas_ms(self) -> dict[str, float]:
        base = self.baseline.components.as_dict()
        cand = self.candidate.components.as_dict()
        return {key: cand[key] - base[key] for key in base}


def compare_schemes(
    trace: RunTrace,
    base_config: SimulationConfig,
    baseline_scheme: str = "fullpage",
    candidate_scheme: str = "eager",
    **candidate_kwargs,
) -> SchemeComparison:
    """Run two schemes on the same trace/config and compare them.

    The fullpage baseline always uses full pages (its subpage size is the
    page size); the candidate keeps the configured subpage size.
    """
    if base_config.backing == "disk":
        raise ConfigError("scheme comparison requires remote backing")
    baseline_cfg = base_config.with_overrides(
        scheme=baseline_scheme,
        scheme_kwargs={},
        subpage_bytes=(
            base_config.page_bytes
            if baseline_scheme == "fullpage"
            else base_config.subpage_bytes
        ),
    )
    candidate_cfg = base_config.with_overrides(
        scheme=candidate_scheme, scheme_kwargs=candidate_kwargs
    )
    return SchemeComparison(
        baseline=simulate(trace, baseline_cfg),
        candidate=simulate(trace, candidate_cfg),
    )


def disk_speedup(
    trace: RunTrace, config: SimulationConfig
) -> SchemeComparison:
    """Global-memory run vs the same run with disk backing."""
    disk_cfg = config.with_overrides(
        backing="disk", scheme="fullpage",
        subpage_bytes=config.page_bytes,
    )
    return SchemeComparison(
        baseline=simulate(trace, disk_cfg),
        candidate=simulate(trace, config),
    )
