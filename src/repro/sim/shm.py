"""Zero-copy shared-memory trace distribution for sweep execution.

A sweep over one trace used to pickle the full run arrays to a worker
for *every* cell: O(cells x trace bytes) of pure dispatch overhead.
This module makes trace bytes cross the process boundary at most once
per unique trace:

* :class:`SharedTraceArena` publishes each unique trace's
  ``pages/blocks/counts/writes`` arrays once — into a
  ``multiprocessing.shared_memory`` segment when the platform has one,
  spilling to an mmap-backed file under the system temp directory when
  it does not — and hands back a tiny :class:`TraceHandle`.
* :class:`TraceHandle` is what jobs ship instead of the arrays: a
  fingerprint, the segment (or spill file) name, and per-array
  dtype/length/offset specs.  Workers attach zero-copy and rebuild a
  :class:`~repro.trace.compress.RunTrace` over the shared buffer.
* :func:`cached_trace` is the worker-side per-process LRU of
  materialized traces, keyed by fingerprint.  A 50-cell sweep over one
  trace deserializes it zero times instead of 50, and the cached
  ``RunTrace`` keeps its :class:`~repro.trace.compress.TraceColumns`
  caches warm across cells.

Lifecycle safety: the arena unlinks its segments (and removes spill
files) on :meth:`SharedTraceArena.close`, which the owning
:class:`~repro.sim.parallel.WorkerPool` calls on scope exit and which is
also registered with :mod:`atexit`.  Segment names embed the publishing
PID, so :func:`reap_orphans` can clean up after a crashed process
(``kill -9`` never runs ``atexit``).

Environment knobs: ``REPRO_SHM=0`` disables the arena entirely (jobs
fall back to per-cell pickling), ``REPRO_SHM=spill`` forces the
mmap-spill path, and ``REPRO_SHM_WORKER_CACHE`` sizes the per-worker
materialized-trace LRU (default 8).
"""

from __future__ import annotations

import atexit
import itertools
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Callable

import numpy as np

from repro.trace.compress import RunTrace

#: Environment variable controlling the arena ("0"/"off" disables,
#: "spill" forces the mmap-backed file path, anything else enables shm).
ENV_SHM = "REPRO_SHM"

#: Environment variable sizing the per-worker materialized-trace LRU.
ENV_WORKER_CACHE = "REPRO_SHM_WORKER_CACHE"

#: Prefix of every segment / spill file the arena creates.  Names are
#: ``<prefix>_<pid>_<seq>`` so orphan reaping can tell whether the
#: publishing process is still alive.
SEGMENT_PREFIX = "repro_shm"

#: The trace arrays published into a segment, in layout order.
_ARRAY_FIELDS = ("pages", "blocks", "counts", "writes")

#: Per-array alignment inside a segment.
_ALIGN = 64

#: Default capacity of the worker-side materialized-trace LRU.
DEFAULT_WORKER_CACHE = 8

#: Key under which an attached segment rides in ``RunTrace._cols`` so
#: the mapping lives exactly as long as the trace built over it.
_SEGMENT_KEY = "shm_segment"


class _untracked_attach:
    """Attach to a segment without registering it for tracker cleanup.

    Python 3.11's ``SharedMemory`` registers the segment with the
    ``multiprocessing`` resource tracker on *attach* as well as on
    create, which both spams "leaked shared_memory" warnings at worker
    shutdown and — because the tracker's cache is a set — unbalances
    the publisher's own register/unregister pair.  Only the publishing
    arena may unlink, so attaches suppress registration entirely
    (equivalent to 3.13's ``track=False``).

    The patch is process-global, so it must be reentrant and
    exception-safe: a class-level lock plus a depth counter mean
    concurrent attaches (threads sharing a process) nest instead of
    racing — naive per-instance save/restore lets a second thread save
    the no-op as "the original" and permanently install it — and the
    real ``register`` is restored by whichever exit brings the depth
    back to zero, even when ``SharedMemory()`` raises inside the block.
    """

    _lock = threading.Lock()
    _depth = 0
    _saved: Callable | None = None

    def __enter__(self):
        from multiprocessing import resource_tracker

        cls = _untracked_attach
        with cls._lock:
            if cls._depth == 0:
                cls._saved = resource_tracker.register
                resource_tracker.register = lambda *args, **kwargs: None
            cls._depth += 1
        return self

    def __exit__(self, *exc_info):
        from multiprocessing import resource_tracker

        cls = _untracked_attach
        with cls._lock:
            cls._depth -= 1
            if cls._depth == 0:
                resource_tracker.register = cls._saved
                cls._saved = None


def arena_mode() -> str:
    """The arena mode ``REPRO_SHM`` asks for: ``shm``/``spill``/``off``."""
    raw = os.environ.get(ENV_SHM, "").strip().lower()
    if raw in ("0", "off", "no", "false"):
        return "off"
    if raw == "spill":
        return "spill"
    return "shm"


def default_spill_dir() -> Path:
    """Where spill files live when shared memory is unavailable."""
    return Path(tempfile.gettempdir()) / "repro-trace-spill"


def worker_cache_capacity() -> int:
    """LRU capacity from ``REPRO_SHM_WORKER_CACHE`` (default 8).

    Malformed or non-positive values degrade to the default with a
    warning (:mod:`repro.envknobs`): a capacity of ``-1`` is nonsense
    for this knob, not a request for the minimum.
    """
    from repro.envknobs import env_int

    return env_int(ENV_WORKER_CACHE, DEFAULT_WORKER_CACHE, minimum=1)


# -- handles ----------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TraceHandle:
    """A by-reference description of a published trace.

    Pickles in a few hundred bytes regardless of trace size.  Exactly
    one of ``segment`` (a ``multiprocessing.shared_memory`` name) and
    ``spill_path`` (an mmap-backed file) is set; ``arrays`` holds
    ``(field, dtype_str, length, byte_offset)`` specs for the four run
    arrays inside that buffer.
    """

    fingerprint: str
    segment: str | None
    spill_path: str | None
    arrays: tuple[tuple[str, str, int, int], ...]
    page_bytes: int
    block_bytes: int
    dilation: float
    name: str
    nbytes: int

    def attach(self) -> tuple[RunTrace, Callable[[], None] | None]:
        """Attach zero-copy; returns the trace and an optional closer.

        The segment object is stashed in the trace's cache dict, so the
        mapping lives exactly as long as the trace; the closer releases
        it early once the trace has been dropped (it never unlinks —
        only the publishing arena does that).  Spill mappings are
        released by the garbage collector, so their closer is ``None``.
        """
        closer: Callable[[], None] | None = None
        seg: shared_memory.SharedMemory | None = None
        if self.segment is not None:
            with _untracked_attach():
                seg = shared_memory.SharedMemory(name=self.segment)
            buf = seg.buf

            def closer() -> None:
                try:
                    seg.close()
                except (BufferError, OSError):
                    pass

        else:
            buf = np.memmap(self.spill_path, dtype=np.uint8, mode="r")
        columns = {}
        for field, dtype, length, offset in self.arrays:
            arr = np.ndarray(
                (length,), dtype=np.dtype(dtype), buffer=buf, offset=offset
            )
            if arr.flags.writeable:
                arr.flags.writeable = False
            columns[field] = arr
        trace = RunTrace(
            pages=columns["pages"],
            blocks=columns["blocks"],
            counts=columns["counts"],
            writes=columns["writes"],
            page_bytes=self.page_bytes,
            block_bytes=self.block_bytes,
            dilation=self.dilation,
            name=self.name,
        )
        if seg is not None:
            trace._cols[_SEGMENT_KEY] = seg
        return trace, closer

    def materialize(self) -> RunTrace:
        """Attach and return the trace (mapping lives as long as it)."""
        trace, _ = self.attach()
        return trace


def _layout(trace: RunTrace) -> tuple[list[tuple], int]:
    """Packed single-buffer layout for the trace arrays."""
    specs, offset = [], 0
    for field in _ARRAY_FIELDS:
        arr = np.ascontiguousarray(getattr(trace, field))
        offset = -(-offset // _ALIGN) * _ALIGN
        specs.append((field, arr, arr.dtype.str, len(arr), offset))
        offset += arr.nbytes
    return specs, max(offset, 1)


# -- the arena --------------------------------------------------------------


class SharedTraceArena:
    """Publishes traces into shared buffers, once per unique content.

    The arena owns every segment/spill file it creates and is the only
    thing that unlinks them.  Publishing is memoized on
    :meth:`RunTrace.fingerprint`, so equal-content trace objects share
    one segment.  When segment creation fails (no ``/dev/shm``,
    permissions) the arena degrades to the spill path; when that fails
    too it turns itself off and :meth:`publish` returns ``None``,
    letting callers fall back to per-cell pickling.
    """

    def __init__(
        self,
        mode: str | None = None,
        spill_dir: str | os.PathLike | None = None,
    ) -> None:
        self.mode = arena_mode() if mode is None else mode
        self.spill_dir = (
            Path(spill_dir) if spill_dir is not None else default_spill_dir()
        )
        self._handles: dict[str, TraceHandle] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._spill_files: list[Path] = []
        self._seq = itertools.count()
        self._closed = False
        if self.mode != "off":
            reap_orphans(self.spill_dir)
        atexit.register(self.close)

    def __enter__(self) -> "SharedTraceArena":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def published_count(self) -> int:
        return len(self._handles)

    @property
    def published_bytes(self) -> int:
        return sum(h.nbytes for h in self._handles.values())

    def publish(self, trace: RunTrace) -> TraceHandle | None:
        """Publish (or look up) a trace; ``None`` means arena disabled."""
        if self.mode == "off" or self._closed:
            return None
        fingerprint = trace.fingerprint()
        handle = self._handles.get(fingerprint)
        if handle is not None:
            return handle
        specs, nbytes = _layout(trace)
        if self.mode == "shm":
            handle = self._publish_shm(trace, fingerprint, specs, nbytes)
            if handle is None:
                self.mode = "spill"
        if handle is None and self.mode == "spill":
            handle = self._publish_spill(trace, fingerprint, specs, nbytes)
            if handle is None:
                self.mode = "off"
                return None
        self._handles[fingerprint] = handle
        return handle

    def _next_name(self) -> str:
        return f"{SEGMENT_PREFIX}_{os.getpid()}_{next(self._seq)}"

    def _publish_shm(
        self, trace: RunTrace, fingerprint: str, specs: list, nbytes: int
    ) -> TraceHandle | None:
        seg = None
        for _ in range(8):
            try:
                seg = shared_memory.SharedMemory(
                    name=self._next_name(), create=True, size=nbytes
                )
                break
            except FileExistsError:
                continue
            except (OSError, ValueError):
                return None
        if seg is None:
            return None
        for _, arr, dtype, length, offset in specs:
            np.ndarray(
                (length,), dtype=np.dtype(dtype),
                buffer=seg.buf, offset=offset,
            )[:] = arr
        self._segments.append(seg)
        return self._handle_for(
            trace, fingerprint, specs, nbytes, segment=seg.name
        )

    def _publish_spill(
        self, trace: RunTrace, fingerprint: str, specs: list, nbytes: int
    ) -> TraceHandle | None:
        try:
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            path = self.spill_dir / f"{self._next_name()}.bin"
            buf = bytearray(nbytes)
            for _, arr, dtype, length, offset in specs:
                np.ndarray(
                    (length,), dtype=np.dtype(dtype),
                    buffer=buf, offset=offset,
                )[:] = arr
            path.write_bytes(buf)
        except OSError:
            return None
        self._spill_files.append(path)
        return self._handle_for(
            trace, fingerprint, specs, nbytes, spill_path=str(path)
        )

    def _handle_for(
        self, trace, fingerprint, specs, nbytes,
        segment=None, spill_path=None,
    ) -> TraceHandle:
        return TraceHandle(
            fingerprint=fingerprint,
            segment=segment,
            spill_path=spill_path,
            arrays=tuple(
                (field, dtype, length, offset)
                for field, _, dtype, length, offset in specs
            ),
            page_bytes=trace.page_bytes,
            block_bytes=trace.block_bytes,
            dilation=trace.dilation,
            name=trace.name,
            nbytes=nbytes,
        )

    def close(self) -> None:
        """Unlink every segment and remove every spill file.

        Idempotent.  Workers still holding a mapping keep their view
        (POSIX semantics: unlink removes the name, not live mappings).
        """
        if self._closed:
            return
        self._closed = True
        self._handles.clear()
        for seg in self._segments:
            try:
                seg.close()
            except (BufferError, OSError):
                pass
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass
        self._segments = []
        for path in self._spill_files:
            try:
                path.unlink(missing_ok=True)
            except OSError:
                pass
        self._spill_files = []
        try:
            atexit.unregister(self.close)
        except Exception:
            pass


# -- orphan reaping ---------------------------------------------------------


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):
        return True
    return True


def _reap_file(path: Path) -> bool:
    parts = path.name.split("_")
    if len(parts) < 3:
        return False
    try:
        pid = int(parts[2].split(".")[0] if len(parts) == 3 else parts[2])
    except ValueError:
        return False
    if _pid_alive(pid):
        return False
    try:
        path.unlink(missing_ok=True)
    except OSError:
        return False
    return True


def reap_orphans(spill_dir: str | os.PathLike | None = None) -> int:
    """Remove arena segments/spill files whose publishing PID is dead.

    Normal cleanup happens in :meth:`SharedTraceArena.close` (and its
    ``atexit`` hook); this catches publishers that died without running
    either.  Called on every arena construction; safe to call any time.
    Returns the number of files removed.
    """
    removed = 0
    shm_root = Path("/dev/shm")
    if shm_root.is_dir():
        try:
            candidates = list(shm_root.glob(f"{SEGMENT_PREFIX}_*"))
        except OSError:
            candidates = []
        for path in candidates:
            removed += _reap_file(path)
    spill = Path(spill_dir) if spill_dir is not None else default_spill_dir()
    if spill.is_dir():
        try:
            candidates = list(spill.glob(f"{SEGMENT_PREFIX}_*"))
        except OSError:
            candidates = []
        for path in candidates:
            removed += _reap_file(path)
    return removed


# -- worker-side materialized-trace LRU -------------------------------------

#: fingerprint -> (trace, closer).  Per process; workers of a persistent
#: pool keep it warm across batches.
_TRACE_LRU: "OrderedDict[str, tuple[RunTrace, Callable[[], None] | None]]"
_TRACE_LRU = OrderedDict()


def cached_trace(
    key: str,
    build: Callable[[], tuple[RunTrace, Callable[[], None] | None]],
) -> RunTrace:
    """The process-local materialized trace for ``key`` (LRU, built once).

    ``build`` returns ``(trace, closer)``; the closer (may be ``None``)
    runs when the entry is evicted.  Because the same ``RunTrace``
    object is returned for every cell, its ``TraceColumns`` and
    occurrence caches persist across the cells a worker executes.
    """
    entry = _TRACE_LRU.get(key)
    if entry is not None:
        _TRACE_LRU.move_to_end(key)
        return entry[0]
    trace, closer = build()
    _TRACE_LRU[key] = (trace, closer)
    capacity = worker_cache_capacity()
    while len(_TRACE_LRU) > capacity:
        _, (old_trace, old_closer) = _TRACE_LRU.popitem(last=False)
        # The derived caches (column lists, the batch TraceScan, prods
        # vectors) dwarf the zero-copy run arrays — under the fused
        # engine's fat units they are the per-worker footprint — so
        # drop them eagerly rather than waiting for every stray trace
        # reference to die.
        old_trace._cols.clear()
        del old_trace
        if old_closer is not None:
            old_closer()
    return trace


def clear_trace_cache() -> None:
    """Drop the process-local trace LRU (tests, memory-pressure relief)."""
    while _TRACE_LRU:
        _, (old_trace, old_closer) = _TRACE_LRU.popitem(last=False)
        old_trace._cols.clear()
        del old_trace
        if old_closer is not None:
            old_closer()
