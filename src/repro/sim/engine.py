"""The fast-path execution engine: bulk span advancement.

``SimulationConfig.engine = "fast"`` (the default) runs traces through
this module instead of the per-run reference loop in
:mod:`repro.sim.simulator`.  The two engines are **bit-identical** —
``tests/sim/test_engine_equivalence.py`` asserts equal
:class:`~repro.sim.results.SimulationResult` objects across the full
integration matrix — but this one only dispatches Python per run at the
*interesting* references and advances the clock over everything in
between with NumPy prefix sums over the trace's cached columns.

A run is interesting — needs the full reference treatment — exactly when
its page is non-resident (page fault) or resident-but-incomplete (stall,
lazy subpage fault, or fold of a finished transfer).  Interestingness
only changes at interesting events themselves: faults make pages
resident, evictions make them non-resident, folds complete them, and
arrivals never revoke validity (docs/SIMULATOR.md §2).  Between two
interesting events every run is therefore a plain hit whose entire
effect is a replacement-policy touch at page switches, dirty marking on
writes, and ``count * event_ms`` of clock — all of which batch.

Bit-exactness of the batched pieces:

* ``np.add.accumulate`` over the per-run ``count * event_ms`` products
  performs the same left-to-right float64 addition chain as the
  reference loop, and each product is the same scalar IEEE multiply.
* Touches fire at page *switches*.  Within a span, replaying only each
  switched page's **last** switch (in ascending order) leaves an LRU
  order identical to replaying every switch; for Clock the touch is an
  idempotent flag (no eviction can intervene inside a span), and for
  FIFO/Random touches are no-ops.
* Dirty marking is an idempotent flag per page.

The next interesting event is located with a heap over per-page run
occurrence lists (one stable argsort of the page column, cached on the
trace).  Every currently-interesting page keeps exactly one heap entry
at its next occurrence; processing an event reschedules its page while
it stays interesting, and eviction victims re-enter the heap.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.simulator import Simulator, _RunState
    from repro.trace.compress import RunTrace, TraceColumns

#: Spans shorter than this are walked in plain Python: below it the
#: NumPy slice/accumulate setup costs more than the loop it replaces.
SHORT_SPAN = 32

#: Thrash bail-out: every ``BAIL_WINDOW`` interesting events, if the
#: window consumed fewer than ``BAIL_WINDOW * BAIL_MIN_SPAN`` runs (the
#: average span is shorter than ``BAIL_MIN_SPAN - 1`` hits per event),
#: the heap bookkeeping costs more than the plain loop it replaces and
#: the engine hands the rest of the trace to the reference loop.  The
#: handoff is bit-exact: this engine maintains the same ``state`` the
#: reference loop would, so resuming it mid-trace changes nothing.
BAIL_WINDOW = 2048
BAIL_MIN_SPAN = 4


def span_clock(prods: np.ndarray, i: int, j: int, clock: float) -> float:
    """Advance ``clock`` over runs ``[i, j)`` of precomputed
    ``count * event_ms`` products.

    The shared prefix-sum helper of every bulk engine (fast, batch,
    fused single-lane): one left-to-right float64
    ``np.add.accumulate`` chain seeded with the incoming clock, which
    is bit-identical to the reference loop's scalar
    ``clock += count * event_ms`` per run.
    """
    seg = prods[i:j].copy()
    seg[0] += clock
    np.add.accumulate(seg, out=seg)
    return float(seg[-1])


def drive_fast(
    sim: "Simulator",
    state: "_RunState",
    trace: "RunTrace",
    cols: "TraceColumns",
) -> float:
    """Drive one simulation with bulk span advancement.

    Mutates ``state`` exactly as the reference loop would and returns
    the final clock.  The caller (``Simulator.run``) guarantees no
    instrument, no PALcode emulation, no distance tracking, and no
    adaptive policy on the ``"events"`` feed.  (Fault-feed adaptive
    policies are fine: their observations fire inside ``_page_fault``
    and ``_touch_incomplete``, which this engine calls at exactly the
    reference loop's interesting events.)
    """
    policy = state.policy
    frames = state.frames
    tlb = state.tlb
    event_ms = state.event_ms
    full_mask = state.full_mask

    pages_l = cols.pages
    subpages_l = cols.subpages
    blocks_l = cols.blocks
    counts_l = cols.counts
    writes_l = cols.writes
    pages_arr = cols.pages_arr
    writes_arr = cols.writes_arr
    switch_arr = cols.switch_arr
    switch_cum = cols.switch_cum
    writes_cum = cols.writes_cum
    # Per-run products cached on the columns: prods[k] is
    # bitwise-identical to the reference loop's scalar
    # ``counts[k] * event_ms``, and every cell of a grid touching this
    # (trace, event_ms) shares one vector.
    prods = cols.prods(event_ms)
    n = len(pages_l)

    occ = trace.occurrences()
    optr = dict.fromkeys(occ, 0)

    # Every page starts non-resident, hence interesting: seed the heap
    # with each page's first occurrence.
    heap = [(indices[0], page) for page, indices in occ.items()]
    heapify(heap)
    in_heap = set(occ)

    clock = 0.0
    last_page = -1
    pos = 0
    win_events = 0
    win_start = 0

    def push(page: int, frm: int) -> None:
        """Schedule ``page``'s next occurrence at/after ``frm``."""
        if page in in_heap:
            return
        indices = occ[page]
        i = optr[page]
        end = len(indices)
        while i < end and indices[i] < frm:
            i += 1
        optr[page] = i
        if i < end:
            heappush(heap, (indices[i], page))
            in_heap.add(page)

    def advance(i: int, j: int) -> None:
        """Bulk-process the boring span ``[i, j)`` (hits only)."""
        nonlocal clock, last_page
        if i >= j:
            return
        if tlb is not None or j - i < SHORT_SPAN:
            # TLB lookups interleave with the clock (miss walks are
            # charged in reference order), and short spans are cheaper
            # without array slicing: plain loop, minus the residency /
            # completeness checks the span guarantee makes redundant.
            for k in range(i, j):
                p = pages_l[k]
                if p != last_page:
                    policy.touch(p)
                    last_page = p
                    if tlb is not None and not tlb.access(p):
                        clock += tlb.miss_ms
                if writes_l[k]:
                    f = frames[p]
                    if not f.dirty:
                        f.dirty = True
                clock += counts_l[k] * event_ms
            return
        # ``switch_arr[i]`` compares against ``pages[i-1]``, which equals
        # ``last_page`` at every span start (the previous run was either
        # the interesting event we just handled — which set ``last_page``
        # to its page — or the tail of the previous bulk slice).
        nsw = switch_cum[j] - switch_cum[i]
        if nsw:
            if nsw == 1:
                p = pages_l[j - 1]
                policy.touch(p)
                last_page = p
            else:
                switched = pages_arr[i:j][switch_arr[i:j]]
                # Dedup to each page's last switch, touch in ascending
                # last-switch order (equivalent; see module docstring).
                uniq, first = np.unique(switched[::-1], return_index=True)
                if uniq.size == switched.size:
                    for p in switched.tolist():
                        policy.touch(p)
                else:
                    for p in uniq[np.argsort(first)[::-1]].tolist():
                        policy.touch(p)
                last_page = pages_l[j - 1]
        if writes_cum[j] - writes_cum[i]:
            seq = pages_arr[i:j]
            for p in np.unique(seq[writes_arr[i:j]]).tolist():
                f = frames[p]
                if not f.dirty:
                    f.dirty = True
        clock = span_clock(prods, i, j, clock)

    while heap:
        idx, page = heappop(heap)
        in_heap.discard(page)
        frame = frames.get(page)
        interesting = (
            frame is None
            or frame.pending is not None
            or frame.valid_bits != full_mask
        )
        if idx < pos:
            # Defensive: with one entry per page this cannot happen (the
            # heap minimum bounds how far spans advance), but a stale
            # entry must reschedule rather than lose its page.
            if interesting:
                push(page, pos)
            continue
        if not interesting:
            # The page completed since this entry was pushed; eviction
            # re-enters it if it ever leaves memory again.
            continue

        if pos < idx:
            advance(pos, idx)

        # The interesting run itself, with exact reference semantics
        # (minus the instrument/PAL/distance branches the fallback in
        # Simulator.run guarantees are disabled).
        sp = subpages_l[idx]
        count = counts_l[idx]
        write = writes_l[idx]
        if frame is None:
            state.last_victim = None
            clock = sim._page_fault(
                state, clock, page, sp, blocks_l[idx], write
            )
            frame = frames[page]
            last_page = page
            if tlb is not None and not tlb.access(page):
                clock += tlb.miss_ms
            if state.last_victim is not None:
                # The victim is non-resident now: back into the heap.
                push(state.last_victim, idx)
        else:
            if page != last_page:
                policy.touch(page)
                last_page = page
                if tlb is not None and not tlb.access(page):
                    clock += tlb.miss_ms
            if frame.pending is not None or frame.valid_bits != full_mask:
                clock = sim._touch_incomplete(
                    state, clock, page, frame, sp, blocks_l[idx],
                    write, count,
                )
            if write and not frame.dirty:
                frame.dirty = True
        clock += count * event_ms
        pos = idx + 1
        if frame.pending is not None or frame.valid_bits != full_mask:
            push(page, pos)

        win_events += 1
        if win_events == BAIL_WINDOW:
            if pos - win_start < BAIL_WINDOW * BAIL_MIN_SPAN:
                # Thrashing: nearly every run faults or stalls, so there
                # is nothing to batch (see BAIL_WINDOW above).
                return sim._drive_reference(
                    state, cols, start=pos, clock=clock,
                    last_page=last_page,
                )
            win_events = 0
            win_start = pos

    advance(pos, n)
    return clock
