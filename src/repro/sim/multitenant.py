"""Interleaved multi-tenant simulation against one shared GMS cluster.

:func:`repro.sim.multinode.run_multi_workload` composes workloads
*sequentially*: tenant B only starts faulting after tenant A has fully
finished, so the two never contend for frames, directory entries, or the
wire at the same virtual time.  This module replaces that composition
with a virtual-time interleaved scheduler:

* every tenant gets its own :class:`~repro.sim.simulator.Simulator`
  (own node, own link, own replacement state) against one shared
  :class:`~repro.gms.cluster.Cluster` built by
  :func:`~repro.sim.multinode.build_shared_cluster`;
* a min-heap keyed on ``(virtual clock, tenant index)`` always advances
  the tenant that is earliest in virtual time, one compressed trace run
  at a time (:meth:`Simulator._step_runs`), so getpage/putpage traffic
  from different tenants hits the cluster in global time order and page
  ages are cross-tenant comparable;
* an optional :class:`~repro.net.congestion.CrossTraffic` fabric couples
  the tenants' links, so one tenant's subpage pipeline queues behind
  another's demand transfers (with per-tenant attribution).

Scheduling granularity is one compressed run: events *inside* the run a
tenant is currently executing are applied to shared state when that run
executes, which can be slightly after a later-clocked neighbour's —
bounded by one run's span.  With a single tenant the scheduler degrades
to exactly the sequential path (the regression anchor asserted in
``tests/sim/test_multitenant.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.net.congestion import CrossTraffic
from repro.sim.multinode import (
    NodeWorkload,
    build_shared_cluster,
    cluster_stats_dict,
    workload_config,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.tenants import TenantLatencyReport


@dataclass(slots=True)
class MultiTenantResult:
    """Per-tenant results plus shared-substrate statistics."""

    per_tenant: dict[str, SimulationResult] = field(default_factory=dict)
    cluster_stats: dict[str, float] = field(default_factory=dict)
    #: Interference each tenant *received* on its link
    #: (:meth:`LinkModel.cross_stats`), keyed by tenant name.
    cross_stats: dict[str, dict[str, float]] = field(default_factory=dict)
    #: Wire-time each tenant *caused* on other tenants' links, ms.
    injected_ms: dict[str, float] = field(default_factory=dict)

    @property
    def total_faults(self) -> int:
        return sum(r.page_faults for r in self.per_tenant.values())

    @property
    def shared_copies(self) -> int:
        return int(self.cluster_stats.get("shared_copies", 0))

    def latency_report(
        self, baselines: Mapping[str, float] | None = None
    ) -> "TenantLatencyReport":
        """Per-tenant p50/p99 tails and fairness (see
        :mod:`repro.obs.tenants`); ``baselines`` maps tenant name to its
        solo ``total_ms`` for slowdown computation."""
        from repro.obs.tenants import TenantLatencyReport

        return TenantLatencyReport.from_results(
            self.per_tenant, baselines=baselines
        )


def run_multi_tenant(
    workloads: list[NodeWorkload],
    idle_nodes: int = 2,
    idle_frames: int | None = None,
    seed: int = 0,
    warm: bool = True,
    cross_traffic: bool = True,
) -> MultiTenantResult:
    """Run several workloads interleaved against one shared cluster.

    Same signature and cluster layout as
    :func:`~repro.sim.multinode.run_multi_workload`, plus
    ``cross_traffic`` to couple the tenants' links through a shared
    fabric.  With one workload the result is bit-identical to the
    sequential path (the fabric is inert with a single link).
    """
    cluster = build_shared_cluster(
        workloads, idle_nodes=idle_nodes, idle_frames=idle_frames,
        seed=seed, warm=warm,
    )
    fabric = CrossTraffic() if cross_traffic else None

    sims = []
    steppers = []
    for node_id, workload in enumerate(workloads):
        config = workload_config(workload, node_id, seed=seed)
        simulator = Simulator(
            config,
            cluster=cluster,
            link_fabric=fabric,
            link_label=workload.name,
        )
        state, cols, recorder = simulator._prepare(workload.trace)
        sims.append((workload, simulator, state, recorder))
        steppers.append(simulator._step_runs(state, cols))

    # Virtual-time scheduling: always advance the tenant whose clock is
    # smallest (ties broken by tenant index, i.e. workload order).
    final_clock = [0.0] * len(sims)
    heap = [(0.0, i) for i in range(len(sims))]
    heapq.heapify(heap)
    while heap:
        clock, i = heapq.heappop(heap)
        try:
            advanced = next(steppers[i])
        except StopIteration:
            final_clock[i] = clock
            continue
        heapq.heappush(heap, (advanced, i))

    result = MultiTenantResult()
    for i, (workload, simulator, state, recorder) in enumerate(sims):
        result.per_tenant[workload.name] = simulator._finish(
            state, final_clock[i], recorder
        )
        if fabric is not None:
            result.cross_stats[workload.name] = state.link.cross_stats()
    result.cluster_stats = cluster_stats_dict(cluster)
    if fabric is not None:
        result.injected_ms = dict(fabric.injected_ms)
    return result
