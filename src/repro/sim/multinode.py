"""Multi-workload cluster scenarios.

The paper's global-memory setting has several *active* nodes sharing the
idle memory of lightly-loaded peers, and notes that "a fault on node A
may be satisfied by node B, either because B has stored A's page in its
'global memory', or because A has faulted a page actively in use by B
(e.g., a shared code page)" (Section 2.1).

This module orchestrates that scenario on top of the single-workload
simulator: one GMS cluster, one node (and one :class:`Simulator` run) per
workload, a warm-filled global cache, and an optional *shared region* —
pages every workload names through a common UID namespace, so the second
workload's faults on them are served by copying the first workload's
resident pages.

Workloads run one after another against the shared cluster state.  That
sequential composition captures the capacity and sharing interactions
(who holds what, where faults are served from); it deliberately does not
model timing *interference* between concurrently running programs, which
the paper does not study either.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.gms.cluster import Cluster
from repro.gms.ids import PageUid
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import SHARED_ORIGIN, Simulator
from repro.trace.compress import RunTrace


@dataclass(frozen=True, slots=True)
class NodeWorkload:
    """One active node's workload and paging configuration."""

    name: str
    trace: RunTrace
    memory_pages: int
    scheme: str = "eager"
    subpage_bytes: int = 1024
    #: Pages >= this VPN are shared with every other workload.
    shared_from_page: int | None = None

    def __post_init__(self) -> None:
        if self.memory_pages < 1:
            raise ConfigError("memory_pages must be >= 1")


@dataclass(slots=True)
class MultiNodeResult:
    """Per-workload results plus the shared cluster's statistics."""

    per_node: dict[str, SimulationResult] = field(default_factory=dict)
    cluster_stats: dict[str, float] = field(default_factory=dict)

    @property
    def shared_copies(self) -> int:
        return int(self.cluster_stats.get("shared_copies", 0))

    @property
    def total_faults(self) -> int:
        return sum(r.page_faults for r in self.per_node.values())


def build_shared_cluster(
    workloads: list[NodeWorkload],
    idle_nodes: int = 2,
    idle_frames: int | None = None,
    seed: int = 0,
    warm: bool = True,
) -> Cluster:
    """One shared GMS cluster for several workloads.

    Node ``i`` belongs to workload ``i`` and is sized to its memory
    configuration; ``idle_nodes`` additional nodes supply the global
    cache.  With ``warm=True`` every workload's pages (shared pages only
    once) start in remote memory, matching the paper's warm-cache setup.
    Both the sequential (:func:`run_multi_workload`) and interleaved
    (:func:`repro.sim.multitenant.run_multi_tenant`) paths start from
    this exact state — a precondition of their bit-identity.
    """
    if not workloads:
        raise ConfigError("need at least one workload")
    if idle_nodes < 1:
        raise ConfigError("need at least one idle node")
    names = [w.name for w in workloads]
    if len(set(names)) != len(names):
        raise ConfigError("workload names must be unique")

    cluster = Cluster(seed=seed)
    footprints = [w.trace.footprint_pages() for w in workloads]
    per_idle = (
        idle_frames
        if idle_frames is not None
        else max(1, -(-2 * sum(footprints) // idle_nodes))
    )
    cluster.add_nodes(
        [w.memory_pages for w in workloads] + [per_idle] * idle_nodes
    )

    if warm:
        uids: list[PageUid] = []
        for node_id, workload in enumerate(workloads):
            for vpn in np.unique(workload.trace.pages).tolist():
                if (
                    workload.shared_from_page is not None
                    and vpn >= workload.shared_from_page
                ):
                    uids.append(PageUid(SHARED_ORIGIN, vpn))
                else:
                    uids.append(PageUid(node_id, vpn))
        cluster.warm_fill_uids(
            uids, exclude=tuple(range(len(workloads)))
        )
    return cluster


def workload_config(
    workload: NodeWorkload, node_id: int, seed: int = 0
) -> SimulationConfig:
    """The per-workload simulator configuration both paths share."""
    return SimulationConfig(
        memory_pages=workload.memory_pages,
        scheme=workload.scheme,
        subpage_bytes=workload.subpage_bytes,
        backing="cluster",
        cluster_node_id=node_id,
        shared_from_page=workload.shared_from_page,
        seed=seed,
    )


def cluster_stats_dict(cluster: Cluster) -> dict[str, float]:
    """The cluster's protocol statistics as a plain dict."""
    stats = cluster.stats
    return {
        "getpages": stats.getpages,
        "remote_hits": stats.remote_hits,
        "local_global_hits": stats.local_global_hits,
        "shared_copies": stats.shared_copies,
        "disk_fills": stats.disk_fills,
        "putpages": stats.putpages,
        "discards": stats.discards,
        "disk_writebacks": stats.disk_writebacks,
        "messages": stats.messages,
        "global_hit_ratio": stats.global_hit_ratio,
    }


def run_multi_workload(
    workloads: list[NodeWorkload],
    idle_nodes: int = 2,
    idle_frames: int | None = None,
    seed: int = 0,
    warm: bool = True,
) -> MultiNodeResult:
    """Run several workloads against one shared GMS cluster.

    Workloads run one after another (see the module docstring); use
    :func:`repro.sim.multitenant.run_multi_tenant` for the interleaved,
    interference-modelling composition.
    """
    cluster = build_shared_cluster(
        workloads, idle_nodes=idle_nodes, idle_frames=idle_frames,
        seed=seed, warm=warm,
    )
    result = MultiNodeResult()
    for node_id, workload in enumerate(workloads):
        config = workload_config(workload, node_id, seed=seed)
        simulator = Simulator(config, cluster=cluster)
        result.per_node[workload.name] = simulator.run(workload.trace)
    result.cluster_stats = cluster_stats_dict(cluster)
    return result
