"""Cross-cell batched simulation: many cells, one shared trace scan.

The paper's headline evidence is grid-shaped — Figure 9 runs every
application across the full (scheme x subpage size x memory size)
matrix — and every cell of such a grid walks the *same* trace.  The
fast engine (:mod:`repro.sim.engine`) already amortizes the per-trace
column and occurrence caches across cells, but it still pays the
expensive part of every bulk span — deduplicating page switches with
``np.unique``/``argsort`` and rediscovering write sets — once per cell
per span.  Those structures do not depend on the cell at all: which run
switches to which page, and where that page switches next, is a
property of the trace alone.

This module hoists that work into a :class:`TraceScan`, computed once
per trace and shared by every cell of a batch:

* ``switch_pos``/``switch_page``/``switch_next`` — the position and
  page of every page switch, plus the position of the *next* switch to
  the same page.  Any cell's span ``[i, j)`` recovers its
  replacement-policy touch sequence (each switched page's **last**
  switch, in ascending order — exactly the fast engine's dedup order)
  with two ``searchsorted`` probes and one vectorized compare
  ``switch_next >= j``, instead of a per-span sort.
* ``write_pos``/``write_page``/``write_prev`` — the same structure for
  write runs: ``write_prev < i`` selects each page's first write inside
  the span, i.e. the unique pages to dirty-mark.
* a per-``event_ms`` cache of the ``count * event_ms`` products the
  clock accumulates over (cells of a grid share one event cost).

:func:`simulate_cells` then drives N configurations over one trace:
each cell's substrate is built by the standard
:meth:`~repro.sim.simulator.Simulator._prepare` (same objects, same
reset order as a standalone run), the spans between a cell's
interesting events advance through the shared scan, and only the event
slices a cell finds interesting — faults, stalls, folds — take the
scalar reference path.  Per-cell residency stays in the simulator's
frame table with its valid-subpage bitmasks, so the scalar path is
*identical* code to the reference loop's.

Bit-exactness: the clock chain is the same left-to-right float64
``np.add.accumulate`` the fast engine uses, the touch order is the same
ascending last-switch order, and dirty marking is an idempotent flag —
``tests/sim/test_engine_equivalence.py`` asserts equal
:class:`~repro.sim.results.SimulationResult` objects against both the
fast and reference engines across the full integration matrix.

Eligibility (:func:`batch_eligible`) is stricter than the fast
engine's: no observability, no PALcode, no distance tracking, no TLB
(its miss walks interleave with the clock inside spans), no adaptive
meta-scheme, and no live model instances (those cells are not
content-addressable and keep their per-cell dispatch).  Ineligible
configurations silently take the ordinary :func:`~repro.sim.simulator.
simulate` path, so :func:`simulate_cells` is a safe drop-in for any
mix of cells.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.config import SimulationConfig
from repro.sim.engine import (
    BAIL_MIN_SPAN,
    BAIL_WINDOW,
    SHORT_SPAN,
    span_clock,
)
from repro.sim.kernels import accumulate_lanes, kernel_name
from repro.sim.simulator import Simulator
from repro.sim.soa import (
    FusedClock,
    FusedFifo,
    FusedFrames,
    FusedLru,
    StampCounter,
)
from repro.trace.compress import index_dtype

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import SimulationResult
    from repro.sim.simulator import _RunState
    from repro.trace.compress import RunTrace, TraceColumns

#: Key under which a trace's :class:`TraceScan` rides in
#: ``RunTrace._cols``, next to the column and occurrence caches (and,
#: like them, dropped on pickling and rebuilt lazily per process).
_SCAN_KEY = "batch_scan"


class TraceScan:
    """Cell-independent switch/write structure of one trace.

    Built from any :class:`~repro.trace.compress.TraceColumns` of the
    trace — the page and write columns are subpage-size-independent —
    and shared by every cell of a batch, whatever its subpage size,
    memory size, scheme, or backing.
    """

    __slots__ = (
        "switch_pos",
        "switch_page",
        "switch_next",
        "switch_col",
        "write_pos",
        "write_page",
        "write_prev",
        "write_col",
        "page_ids",
        "page_ids_list",
        "col_of",
    )

    def __init__(self, cols: "TraceColumns") -> None:
        n = len(cols.pages)
        # Narrowest run-index dtype (int32 below 2**31 runs): these
        # arrays are rebuilt per worker process, so halving them halves
        # the per-worker scan footprint alongside the shm arena's.
        idx = index_dtype(n)
        pages_arr = cols.pages_arr
        self.switch_pos = np.flatnonzero(cols.switch_arr).astype(
            idx, copy=False
        )
        self.switch_page = pages_arr[self.switch_pos]
        # switch_next[s]: run index of the next switch to the same page
        # strictly after switch s; n when there is none.  One stable
        # argsort groups switches by page while keeping each group in
        # ascending position order, so "next of same page" is just the
        # following entry of the group.
        self.switch_next = np.full(len(self.switch_pos), n, dtype=idx)
        order = np.argsort(self.switch_page, kind="stable")
        pos_sorted = self.switch_pos[order]
        page_sorted = self.switch_page[order]
        same = page_sorted[1:] == page_sorted[:-1]
        self.switch_next[order[:-1][same]] = pos_sorted[1:][same]

        self.write_pos = np.flatnonzero(cols.writes_arr).astype(
            idx, copy=False
        )
        self.write_page = pages_arr[self.write_pos]
        # write_prev[w]: run index of the previous write run to the same
        # page; -1 when there is none.
        self.write_prev = np.full(len(self.write_pos), -1, dtype=idx)
        order = np.argsort(self.write_page, kind="stable")
        pos_sorted = self.write_pos[order]
        page_sorted = self.write_page[order]
        same = page_sorted[1:] == page_sorted[:-1]
        self.write_prev[order[1:][same]] = pos_sorted[:-1][same]

        # Dense page columns for the fused engine's [cell, column]
        # matrices: distinct trace pages, sorted, numbered 0..P-1.
        self.page_ids = np.unique(pages_arr)
        self.page_ids_list: list[int] = self.page_ids.tolist()
        self.col_of: dict[int, int] = {
            page: col for col, page in enumerate(self.page_ids_list)
        }
        self.switch_col = np.searchsorted(
            self.page_ids, self.switch_page
        ).astype(np.int32, copy=False)
        self.write_col = np.searchsorted(
            self.page_ids, self.write_page
        ).astype(np.int32, copy=False)

    def prods(self, cols: "TraceColumns", event_ms: float) -> np.ndarray:
        """The per-run clock products at ``event_ms``, computed once.

        Delegates to the columns' own cache
        (:meth:`~repro.trace.compress.TraceColumns.prods`), which every
        engine — fast, batch, fused — now shares, so a grid computes
        each product vector once per (trace, event_ms) rather than once
        per cell.
        """
        return cols.prods(event_ms)


def trace_scan(trace: "RunTrace", cols: "TraceColumns") -> TraceScan:
    """The trace's cached :class:`TraceScan` (built on first use)."""
    scan = trace._cols.get(_SCAN_KEY)
    if scan is None:
        scan = trace._cols[_SCAN_KEY] = TraceScan(cols)
    return scan


def batch_eligible(config: SimulationConfig) -> bool:
    """Whether a configuration may run under the batched engine.

    Everything the fast engine excludes (observability, PALcode,
    distance tracking, event-feed adaptive policies) plus the TLB —
    its miss walks interleave with the clock inside spans, defeating
    bulk advancement — the adaptive meta-scheme altogether (its
    controller state is deliberately kept on the per-cell dispatch
    path), and live model instances (not content-addressable, so the
    executor cannot group them by content anyway).
    """
    return (
        config.engine == "fast"
        and not config.observe
        and config.protection != "palcode"
        and not config.track_distances
        and config.tlb_entries == 0
        and isinstance(config.scheme, str)
        and config.scheme != "adaptive"
        and config.latency_model is None
        and config.disk_model is None
    )


def drive_batch(
    sim: Simulator,
    state: "_RunState",
    trace: "RunTrace",
    cols: "TraceColumns",
    scan: TraceScan,
) -> float:
    """Drive one cell over the shared scan; returns the final clock.

    The structure mirrors :func:`repro.sim.engine.drive_fast` — the
    same interesting-event heap, the same scalar event handling, the
    same thrash bail-out to the reference loop — but every bulk span
    recovers its touch and dirty sets from the shared
    :class:`TraceScan` instead of sorting its own slice.  The caller
    (:func:`simulate_cells`) guarantees :func:`batch_eligible`, so
    there is no TLB, instrument, PALcode, or adaptive controller.
    """
    policy = state.policy
    frames = state.frames
    event_ms = state.event_ms
    full_mask = state.full_mask

    pages_l = cols.pages
    subpages_l = cols.subpages
    blocks_l = cols.blocks
    counts_l = cols.counts
    writes_l = cols.writes
    switch_pos = scan.switch_pos
    switch_page = scan.switch_page
    switch_next = scan.switch_next
    write_pos = scan.write_pos
    write_page = scan.write_page
    write_prev = scan.write_prev
    prods = scan.prods(cols, event_ms)
    searchsorted = np.searchsorted
    # Probe keys must carry the positions arrays' own (narrow) dtype:
    # searchsorted with a wider scalar re-casts the whole array per call.
    run_t = switch_pos.dtype.type
    n = len(pages_l)

    occ = trace.occurrences()
    optr = dict.fromkeys(occ, 0)

    heap = [(indices[0], page) for page, indices in occ.items()]
    heapify(heap)
    in_heap = set(occ)

    clock = 0.0
    last_page = -1
    pos = 0
    win_events = 0
    win_start = 0

    def push(page: int, frm: int) -> None:
        """Schedule ``page``'s next occurrence at/after ``frm``."""
        if page in in_heap:
            return
        indices = occ[page]
        i = optr[page]
        end = len(indices)
        while i < end and indices[i] < frm:
            i += 1
        optr[page] = i
        if i < end:
            heappush(heap, (indices[i], page))
            in_heap.add(page)

    def advance(i: int, j: int) -> None:
        """Bulk-process the boring span ``[i, j)`` (hits only)."""
        nonlocal clock, last_page
        if i >= j:
            return
        if j - i < SHORT_SPAN:
            for k in range(i, j):
                p = pages_l[k]
                if p != last_page:
                    policy.touch(p)
                    last_page = p
                if writes_l[k]:
                    f = frames[p]
                    if not f.dirty:
                        f.dirty = True
                clock += counts_l[k] * event_ms
            return
        ri, rj = run_t(i), run_t(j)
        lo = searchsorted(switch_pos, ri)
        hi = searchsorted(switch_pos, rj)
        if hi > lo:
            if hi - lo == 1:
                p = pages_l[j - 1]
                policy.touch(p)
                last_page = p
            else:
                # Each switched page's last switch inside the span, in
                # ascending position order — the same dedup sequence
                # drive_fast extracts with np.unique/argsort per span.
                keep = switch_next[lo:hi] >= rj
                for p in switch_page[lo:hi][keep].tolist():
                    policy.touch(p)
                last_page = pages_l[j - 1]
        wlo = searchsorted(write_pos, ri)
        whi = searchsorted(write_pos, rj)
        if whi > wlo:
            # Each page's first write inside the span = the span's
            # unique written pages (dirty marking is idempotent).
            keep = write_prev[wlo:whi] < i
            for p in write_page[wlo:whi][keep].tolist():
                f = frames[p]
                if not f.dirty:
                    f.dirty = True
        clock = span_clock(prods, i, j, clock)

    while heap:
        idx, page = heappop(heap)
        in_heap.discard(page)
        frame = frames.get(page)
        interesting = (
            frame is None
            or frame.pending is not None
            or frame.valid_bits != full_mask
        )
        if idx < pos:
            if interesting:
                push(page, pos)
            continue
        if not interesting:
            continue

        if pos < idx:
            advance(pos, idx)

        sp = subpages_l[idx]
        count = counts_l[idx]
        write = writes_l[idx]
        if frame is None:
            state.last_victim = None
            clock = sim._page_fault(
                state, clock, page, sp, blocks_l[idx], write
            )
            frame = frames[page]
            last_page = page
            if state.last_victim is not None:
                push(state.last_victim, idx)
        else:
            if page != last_page:
                policy.touch(page)
                last_page = page
            if frame.pending is not None or frame.valid_bits != full_mask:
                clock = sim._touch_incomplete(
                    state, clock, page, frame, sp, blocks_l[idx],
                    write, count,
                )
            if write and not frame.dirty:
                frame.dirty = True
        clock += count * event_ms
        pos = idx + 1
        if frame.pending is not None or frame.valid_bits != full_mask:
            push(page, pos)

        win_events += 1
        if win_events == BAIL_WINDOW:
            if pos - win_start < BAIL_WINDOW * BAIL_MIN_SPAN:
                return sim._drive_reference(
                    state, cols, start=pos, clock=clock,
                    last_page=last_page,
                )
            win_events = 0
            win_start = pos

    advance(pos, n)
    return clock


class FusedProfile:
    """Per-stage accounting of one :func:`drive_fused` pass.

    Filled only when explicitly requested (``tools/bench_throughput.py
    --profile``; the timing calls would otherwise tax the hot loop), so
    regressions are attributable: scan/setup cost, bulk span share,
    scalar fault-fallback share, and which kernel tier ran.
    """

    __slots__ = (
        "cells",
        "events",
        "scalar_events",
        "spans",
        "bulk_s",
        "scalar_s",
        "bailed",
        "kernel",
    )

    def __init__(self) -> None:
        self.cells = 0          #: cells entering the fused pass
        self.events = 0         #: heap events popped and processed
        self.scalar_events = 0  #: per-cell scalar event handlings
        self.spans = 0          #: bulk spans advanced
        self.bulk_s = 0.0       #: seconds in vectorized span advances
        self.scalar_s = 0.0     #: seconds in scalar event handling
        self.bailed: list[int] = []  #: cell indices that thrash-bailed
        self.kernel = ""        #: resolved clock-kernel tier


def drive_fused(
    cells: list[tuple[Simulator, "_RunState", "TraceColumns"]],
    trace: "RunTrace",
    scan: TraceScan,
    profile: FusedProfile | None = None,
) -> list[float]:
    """Drive N cells through ONE pass over the shared event heap.

    Returns each cell's final clock, positionally parallel to
    ``cells``.  Where :func:`drive_batch` walks the heap once *per
    cell*, this walks it once for the whole batch:

    * The heap holds one entry per page that is interesting — faulting,
      pending, or incomplete — for **any** active cell, at its next
      occurrence.  The span up to the heap minimum is therefore boring
      (pure hits) for *every* active cell simultaneously, and advances
      all of them with one set of vectorized updates: LRU stamps and
      Clock reference bits land in ``[page-column, cell]`` matrices
      (:mod:`repro.sim.soa`), dirty marks in a shared overlay, and the
      clocks through the selected multi-lane prefix-sum kernel
      (:mod:`repro.sim.kernels`).
    * At each popped event only the subset of cells for which the page
      is actually interesting drops to the existing scalar handling —
      the same ``_page_fault`` / ``_touch_incomplete`` calls, against
      each cell's own state.  Cells that hold the page resident and
      complete take the vectorized hit path.

    Bit-identity with per-cell :func:`drive_batch`/``drive_fast``:

    * A cell's event sequence is unchanged.  The fused heap's entries
      are a superset of any one cell's, so every run one cell finds
      interesting is popped here too, in the same ascending order, and
      the per-cell interest test is the same frame inspection.
    * Splitting a cell's boring span at other cells' events preserves
      its results exactly: the clock chain composes (each sub-span
      seeds the next), per-sub-span last-switch touch sequences leave
      the same final recency order as one whole-span dedup (both equal
      replaying every switch), and dirty marking is idempotent.
    * ``last_page`` is genuinely global: after every processed event
      all participating cells agree on it (fault and hit paths both
      leave it at the event's page), and within spans it follows the
      trace alone.
    * The thrash bail-out counts each cell's own events in its own
      window, so a cell bails at exactly the trace point its standalone
      run would, hands its remainder to ``_drive_reference``, and drops
      out of the fused pass without perturbing the other cells' spans
      (its matrix rows simply stop being selected).
    """
    n_cells = len(cells)
    sims = [c[0] for c in cells]
    states = [c[1] for c in cells]
    colss = [c[2] for c in cells]
    cols0 = colss[0]

    pages_l = cols0.pages
    blocks_l = cols0.blocks
    counts_l = cols0.counts
    writes_l = cols0.writes
    subpages_c = [cols.subpages for cols in colss]
    n = len(pages_l)

    switch_pos = scan.switch_pos
    switch_next = scan.switch_next
    switch_col = scan.switch_col
    write_pos = scan.write_pos
    write_prev = scan.write_prev
    write_col = scan.write_col
    page_ids_list = scan.page_ids_list
    col_of = scan.col_of
    n_pages = len(page_ids_list)
    searchsorted = np.searchsorted
    # See drive_batch: probe with the positions arrays' own dtype, or
    # every searchsorted re-casts the whole (int32) array to int64.
    run_t = switch_pos.dtype.type
    ix_ = np.ix_
    flatnonzero = np.flatnonzero

    # --- struct-of-arrays per-cell state -------------------------------
    # Matrices are [page-column, cell]: the hot accesses are whole-page
    # slices — a span scatters stamps/dirty across all cells of a few
    # pages, an event reads one page's boring bits for all cells — so
    # pages-major keeps every one of those a contiguous row.
    clocks = np.zeros(n_cells, dtype=np.float64)
    clocks_item = clocks.item
    event_ms_c = [state.event_ms for state in states]
    event_ms_arr = np.array(event_ms_c, dtype=np.float64)
    full_mask_c = [state.full_mask for state in states]
    boring = np.zeros((n_pages, n_cells), dtype=bool)
    dirty = np.zeros((n_pages, n_cells), dtype=bool)
    stamps = np.zeros((n_pages, n_cells), dtype=np.int64)
    refbits = np.zeros((n_pages, n_cells), dtype=bool)
    resident = np.zeros((n_pages, n_cells), dtype=bool)
    ctr = StampCounter()

    # Rehost each cell's policy and frame table on the matrices.  The
    # swap happens before any insert, so the adapters see the cell's
    # whole history; Random keeps its original object (no touch state,
    # and its victim choice rides a per-cell seeded RNG).
    lru_mask = np.zeros(n_cells, dtype=bool)
    clk_mask = np.zeros(n_cells, dtype=bool)
    frames_c: list[FusedFrames] = []
    for c, state in enumerate(states):
        frames = FusedFrames(dirty[:, c], col_of)
        state.frames = frames
        frames_c.append(frames)
        kind = state.policy.name
        if kind == "lru":
            lru_mask[c] = True
            state.policy = FusedLru(
                stamps[:, c], resident[:, c], page_ids_list, col_of, ctr
            )
        elif kind == "fifo":
            state.policy = FusedFifo(
                stamps[:, c], resident[:, c], page_ids_list, col_of, ctr
            )
        elif kind == "clock":
            clk_mask[c] = True
            state.policy = FusedClock(refbits[:, c], col_of)
    policies_c = [state.policy for state in states]

    active = np.ones(n_cells, dtype=bool)
    active_count = n_cells
    win_events = [0] * n_cells
    win_start = [0] * n_cells

    # Row index sets for the vectorized span updates, plus one prods
    # vector per distinct event_ms (cells of a grid usually share one);
    # rebuilt on the rare bail-out.
    act_rows = lru_rows = clk_rows = np.empty(0, dtype=np.intp)
    all_act = all_lru = all_clk = False
    groups: list[tuple[np.ndarray, np.ndarray]] = []

    def rebuild_rows() -> None:
        nonlocal act_rows, lru_rows, clk_rows, groups
        nonlocal all_act, all_lru, all_clk
        act_rows = flatnonzero(active)
        lru_rows = flatnonzero(active & lru_mask)
        clk_rows = flatnonzero(active & clk_mask)
        # Full-width row assignments beat ix_ scatters; remember when
        # every cell participates (the overwhelmingly common case).
        all_act = act_rows.size == n_cells
        all_lru = lru_rows.size == n_cells
        all_clk = clk_rows.size == n_cells
        by_ems: dict[float, list[int]] = {}
        for c in act_rows.tolist():
            by_ems.setdefault(event_ms_c[c], []).append(c)
        groups = [
            (cols0.prods(ems), np.array(rows, dtype=np.intp))
            for ems, rows in by_ems.items()
        ]

    rebuild_rows()
    if profile is not None:
        profile.cells = n_cells
        profile.kernel = kernel_name()

    occ = trace.occurrences()
    optr = dict.fromkeys(occ, 0)
    heap = [(indices[0], page) for page, indices in occ.items()]
    heapify(heap)
    in_heap = set(occ)

    last_page = -1
    pos = 0
    perf_counter = time.perf_counter

    def push(page: int, frm: int) -> None:
        """Schedule ``page``'s next occurrence at/after ``frm``."""
        if page in in_heap:
            return
        indices = occ[page]
        i = optr[page]
        end = len(indices)
        while i < end and indices[i] < frm:
            i += 1
        optr[page] = i
        if i < end:
            heappush(heap, (indices[i], page))
            in_heap.add(page)

    def advance(i: int, j: int) -> None:
        """Bulk-advance every active cell over boring span ``[i, j)``."""
        nonlocal last_page
        if i >= j:
            return
        if profile is not None:
            profile.spans += 1
            t0 = perf_counter()
        ri, rj = run_t(i), run_t(j)
        lo = searchsorted(switch_pos, ri)
        hi = searchsorted(switch_pos, rj)
        if hi > lo:
            tcols = switch_col[lo:hi]
            if hi - lo > 1:
                # Each switched page's last switch inside the span, in
                # ascending position order — the same dedup sequence
                # drive_fast/drive_batch replay per cell.
                tcols = tcols[switch_next[lo:hi] >= rj]
            count = len(tcols)
            base = ctr.value
            ctr.value = base + count
            if lru_rows.size:
                vals = np.arange(
                    base + 1, base + count + 1, dtype=np.int64
                )[:, None]
                if all_lru:
                    stamps[tcols] = vals
                else:
                    stamps[ix_(tcols, lru_rows)] = vals
            if clk_rows.size:
                if all_clk:
                    refbits[tcols] = True
                else:
                    refbits[ix_(tcols, clk_rows)] = True
            last_page = pages_l[j - 1]
        wlo = searchsorted(write_pos, ri)
        whi = searchsorted(write_pos, rj)
        if whi > wlo:
            # Each page's first write inside the span = the span's
            # unique written pages (dirty marking is idempotent).
            wcols = write_col[wlo:whi][write_prev[wlo:whi] < ri]
            if wcols.size:
                if all_act:
                    dirty[wcols] = True
                else:
                    dirty[ix_(wcols, act_rows)] = True
        for prods_g, rows_g in groups:
            clocks[rows_g] = accumulate_lanes(
                prods_g, i, j, clocks[rows_g]
            )
        if profile is not None:
            profile.bulk_s += perf_counter() - t0

    while heap and active_count:
        idx, page = heappop(heap)
        in_heap.discard(page)
        col = col_of[page]
        col_boring = boring[col]
        rows = flatnonzero(active & ~col_boring)
        if idx < pos:
            # Defensive: with one entry per page this cannot happen (the
            # heap minimum bounds how far spans advance), but a stale
            # entry must reschedule rather than lose its page.
            if rows.size:
                push(page, pos)
            continue
        if not rows.size:
            # Every active cell completed the page since this entry was
            # pushed; eviction re-enters it if it leaves memory again.
            continue

        if pos < idx:
            advance(pos, idx)

        if profile is not None:
            profile.events += 1
            t0 = perf_counter()
        count = counts_l[idx]
        write = writes_l[idx]
        block = blocks_l[idx]
        switch = page != last_page

        # Cells holding the page resident-and-complete: this event run
        # is a plain hit for them — the span treatment, one run wide.
        orows = flatnonzero(active & col_boring)
        if orows.size:
            clocks[orows] += count * event_ms_arr[orows]
            if switch:
                stamp = ctr.next()
                ol = orows[lru_mask[orows]]
                if ol.size:
                    stamps[col, ol] = stamp
                oc = orows[clk_mask[orows]]
                if oc.size:
                    refbits[col, oc] = True
            if write:
                dirty[col, orows] = True

        # Interested cells: the exact scalar reference treatment.
        bailed: list[int] = []
        for c in rows.tolist():
            sim = sims[c]
            state = states[c]
            frames = frames_c[c]
            full_mask = full_mask_c[c]
            clock = clocks_item(c)
            frame = frames.get(page)
            if frame is None:
                state.last_victim = None
                clock = sim._page_fault(
                    state, clock, page, subpages_c[c][idx], block, write
                )
                frame = frames[page]
                if state.last_victim is not None:
                    # The victim is non-resident now: back into the
                    # heap, and no longer boring for this cell.
                    boring[col_of[state.last_victim], c] = False
                    push(state.last_victim, idx)
            else:
                if switch:
                    policies_c[c].touch(page)
                if (
                    frame.pending is not None
                    or frame.valid_bits != full_mask
                ):
                    clock = sim._touch_incomplete(
                        state, clock, page, frame, subpages_c[c][idx],
                        block, write, count,
                    )
                if write and not frame.dirty:
                    frame.dirty = True
            clocks[c] = clock + count * event_ms_c[c]
            col_boring[c] = (
                frame.pending is None and frame.valid_bits == full_mask
            )

            events = win_events[c] + 1
            if events == BAIL_WINDOW:
                if idx + 1 - win_start[c] < BAIL_WINDOW * BAIL_MIN_SPAN:
                    bailed.append(c)
                else:
                    events = 0
                    win_start[c] = idx + 1
            win_events[c] = events

        last_page = page
        pos = idx + 1
        if profile is not None:
            profile.scalar_events += len(bailed) + rows.size
            profile.scalar_s += perf_counter() - t0

        for c in bailed:
            # Thrashing for this cell: nearly every run faults or
            # stalls, so there is nothing left to batch for it.  Hand
            # its remainder to the reference loop — the shared state is
            # exactly what a standalone run would hold here — and drop
            # it from the fused pass.
            clocks[c] = sims[c]._drive_reference(
                states[c], colss[c], start=pos, clock=clocks_item(c),
                last_page=last_page,
            )
            active[c] = False
            active_count -= 1
            if profile is not None:
                profile.bailed.append(c)
        if bailed:
            rebuild_rows()
        if active_count and bool(np.any(active & ~col_boring)):
            push(page, pos)

    if active_count:
        advance(pos, n)
    return [float(clock) for clock in clocks.tolist()]


def simulate_cells_timed(
    trace: "RunTrace",
    configs: list[SimulationConfig],
    *,
    fused: bool = True,
    profile: FusedProfile | None = None,
) -> list[tuple["SimulationResult", float]]:
    """:func:`simulate_cells` plus each cell's own compute seconds.

    Under the default fused engine one drive pass serves every eligible
    cell, so each such cell's reported seconds are its own prepare +
    finish cost plus an equal share of the shared pass — the fair
    attribution for progress displays, since the pass is indivisible.
    """
    out: list[tuple["SimulationResult", float] | None] = [None] * len(
        configs
    )
    fused_idx = (
        [k for k, c in enumerate(configs) if batch_eligible(c)]
        if fused
        else []
    )
    if fused_idx:
        cells = []
        recorders = []
        prep_s = []
        for k in fused_idx:
            started = time.perf_counter()
            sim = Simulator(configs[k])
            state, cols, recorder = sim._prepare(trace)
            cells.append((sim, state, cols))
            recorders.append(recorder)
            prep_s.append(time.perf_counter() - started)
        started = time.perf_counter()
        scan = trace_scan(trace, cells[0][2])
        clocks = drive_fused(cells, trace, scan, profile=profile)
        share = (time.perf_counter() - started) / len(cells)
        for (sim, state, _), recorder, clock, spent, k in zip(
            cells, recorders, clocks, prep_s, fused_idx
        ):
            started = time.perf_counter()
            result = sim._finish(state, clock, recorder)
            out[k] = (
                result, spent + share + time.perf_counter() - started
            )

    scan_legacy: TraceScan | None = None
    for k, config in enumerate(configs):
        if out[k] is not None:
            continue
        started = time.perf_counter()
        sim = Simulator(config)
        if batch_eligible(config):
            state, cols, recorder = sim._prepare(trace)
            if scan_legacy is None:
                scan_legacy = trace_scan(trace, cols)
            clock = drive_batch(sim, state, trace, cols, scan_legacy)
            result = sim._finish(state, clock, recorder)
        else:
            result = sim.run(trace)
        out[k] = (result, time.perf_counter() - started)
    return out  # type: ignore[return-value]


def simulate_cells(
    trace: "RunTrace",
    configs: list[SimulationConfig],
    *,
    fused: bool = True,
) -> list["SimulationResult"]:
    """Simulate many configurations over one trace, batched.

    Results are positionally parallel to ``configs`` and bit-identical
    to ``[simulate(trace, c) for c in configs]``.  Eligible cells run
    the fused multi-cell pass (:func:`drive_fused`; ``fused=False``
    keeps them on the per-cell :func:`drive_batch` loop, mainly for
    benchmarking the fusion win); cells failing :func:`batch_eligible`
    transparently take the ordinary :func:`~repro.sim.simulator.
    simulate` path.
    """
    return [
        result
        for result, _ in simulate_cells_timed(trace, configs, fused=fused)
    ]
