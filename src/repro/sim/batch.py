"""Cross-cell batched simulation: many cells, one shared trace scan.

The paper's headline evidence is grid-shaped — Figure 9 runs every
application across the full (scheme x subpage size x memory size)
matrix — and every cell of such a grid walks the *same* trace.  The
fast engine (:mod:`repro.sim.engine`) already amortizes the per-trace
column and occurrence caches across cells, but it still pays the
expensive part of every bulk span — deduplicating page switches with
``np.unique``/``argsort`` and rediscovering write sets — once per cell
per span.  Those structures do not depend on the cell at all: which run
switches to which page, and where that page switches next, is a
property of the trace alone.

This module hoists that work into a :class:`TraceScan`, computed once
per trace and shared by every cell of a batch:

* ``switch_pos``/``switch_page``/``switch_next`` — the position and
  page of every page switch, plus the position of the *next* switch to
  the same page.  Any cell's span ``[i, j)`` recovers its
  replacement-policy touch sequence (each switched page's **last**
  switch, in ascending order — exactly the fast engine's dedup order)
  with two ``searchsorted`` probes and one vectorized compare
  ``switch_next >= j``, instead of a per-span sort.
* ``write_pos``/``write_page``/``write_prev`` — the same structure for
  write runs: ``write_prev < i`` selects each page's first write inside
  the span, i.e. the unique pages to dirty-mark.
* a per-``event_ms`` cache of the ``count * event_ms`` products the
  clock accumulates over (cells of a grid share one event cost).

:func:`simulate_cells` then drives N configurations over one trace:
each cell's substrate is built by the standard
:meth:`~repro.sim.simulator.Simulator._prepare` (same objects, same
reset order as a standalone run), the spans between a cell's
interesting events advance through the shared scan, and only the event
slices a cell finds interesting — faults, stalls, folds — take the
scalar reference path.  Per-cell residency stays in the simulator's
frame table with its valid-subpage bitmasks, so the scalar path is
*identical* code to the reference loop's.

Bit-exactness: the clock chain is the same left-to-right float64
``np.add.accumulate`` the fast engine uses, the touch order is the same
ascending last-switch order, and dirty marking is an idempotent flag —
``tests/sim/test_engine_equivalence.py`` asserts equal
:class:`~repro.sim.results.SimulationResult` objects against both the
fast and reference engines across the full integration matrix.

Eligibility (:func:`batch_eligible`) is stricter than the fast
engine's: no observability, no PALcode, no distance tracking, no TLB
(its miss walks interleave with the clock inside spans), no adaptive
meta-scheme, and no live model instances (those cells are not
content-addressable and keep their per-cell dispatch).  Ineligible
configurations silently take the ordinary :func:`~repro.sim.simulator.
simulate` path, so :func:`simulate_cells` is a safe drop-in for any
mix of cells.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.config import SimulationConfig
from repro.sim.engine import BAIL_MIN_SPAN, BAIL_WINDOW, SHORT_SPAN
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.results import SimulationResult
    from repro.sim.simulator import _RunState
    from repro.trace.compress import RunTrace, TraceColumns

#: Key under which a trace's :class:`TraceScan` rides in
#: ``RunTrace._cols``, next to the column and occurrence caches (and,
#: like them, dropped on pickling and rebuilt lazily per process).
_SCAN_KEY = "batch_scan"


class TraceScan:
    """Cell-independent switch/write structure of one trace.

    Built from any :class:`~repro.trace.compress.TraceColumns` of the
    trace — the page and write columns are subpage-size-independent —
    and shared by every cell of a batch, whatever its subpage size,
    memory size, scheme, or backing.
    """

    __slots__ = (
        "switch_pos",
        "switch_page",
        "switch_next",
        "write_pos",
        "write_page",
        "write_prev",
        "_prods",
    )

    def __init__(self, cols: "TraceColumns") -> None:
        n = len(cols.pages)
        pages_arr = cols.pages_arr
        self.switch_pos = np.flatnonzero(cols.switch_arr)
        self.switch_page = pages_arr[self.switch_pos]
        # switch_next[s]: run index of the next switch to the same page
        # strictly after switch s; n when there is none.  One stable
        # argsort groups switches by page while keeping each group in
        # ascending position order, so "next of same page" is just the
        # following entry of the group.
        self.switch_next = np.full(len(self.switch_pos), n, dtype=np.int64)
        order = np.argsort(self.switch_page, kind="stable")
        pos_sorted = self.switch_pos[order]
        page_sorted = self.switch_page[order]
        same = page_sorted[1:] == page_sorted[:-1]
        self.switch_next[order[:-1][same]] = pos_sorted[1:][same]

        self.write_pos = np.flatnonzero(cols.writes_arr)
        self.write_page = pages_arr[self.write_pos]
        # write_prev[w]: run index of the previous write run to the same
        # page; -1 when there is none.
        self.write_prev = np.full(len(self.write_pos), -1, dtype=np.int64)
        order = np.argsort(self.write_page, kind="stable")
        pos_sorted = self.write_pos[order]
        page_sorted = self.write_page[order]
        same = page_sorted[1:] == page_sorted[:-1]
        self.write_prev[order[1:][same]] = pos_sorted[:-1][same]

        #: event_ms -> counts * event_ms, shared by the cells' clocks.
        self._prods: dict[float, np.ndarray] = {}

    def prods(self, cols: "TraceColumns", event_ms: float) -> np.ndarray:
        """The per-run clock products at ``event_ms``, computed once.

        Bitwise-identical to the reference loop's scalar
        ``count * event_ms`` (one IEEE multiply per run, same operands).
        """
        arr = self._prods.get(event_ms)
        if arr is None:
            arr = self._prods[event_ms] = cols.counts_f64 * event_ms
        return arr


def trace_scan(trace: "RunTrace", cols: "TraceColumns") -> TraceScan:
    """The trace's cached :class:`TraceScan` (built on first use)."""
    scan = trace._cols.get(_SCAN_KEY)
    if scan is None:
        scan = trace._cols[_SCAN_KEY] = TraceScan(cols)
    return scan


def batch_eligible(config: SimulationConfig) -> bool:
    """Whether a configuration may run under the batched engine.

    Everything the fast engine excludes (observability, PALcode,
    distance tracking, event-feed adaptive policies) plus the TLB —
    its miss walks interleave with the clock inside spans, defeating
    bulk advancement — the adaptive meta-scheme altogether (its
    controller state is deliberately kept on the per-cell dispatch
    path), and live model instances (not content-addressable, so the
    executor cannot group them by content anyway).
    """
    return (
        config.engine == "fast"
        and not config.observe
        and config.protection != "palcode"
        and not config.track_distances
        and config.tlb_entries == 0
        and isinstance(config.scheme, str)
        and config.scheme != "adaptive"
        and config.latency_model is None
        and config.disk_model is None
    )


def drive_batch(
    sim: Simulator,
    state: "_RunState",
    trace: "RunTrace",
    cols: "TraceColumns",
    scan: TraceScan,
) -> float:
    """Drive one cell over the shared scan; returns the final clock.

    The structure mirrors :func:`repro.sim.engine.drive_fast` — the
    same interesting-event heap, the same scalar event handling, the
    same thrash bail-out to the reference loop — but every bulk span
    recovers its touch and dirty sets from the shared
    :class:`TraceScan` instead of sorting its own slice.  The caller
    (:func:`simulate_cells`) guarantees :func:`batch_eligible`, so
    there is no TLB, instrument, PALcode, or adaptive controller.
    """
    policy = state.policy
    frames = state.frames
    event_ms = state.event_ms
    full_mask = state.full_mask

    pages_l = cols.pages
    subpages_l = cols.subpages
    blocks_l = cols.blocks
    counts_l = cols.counts
    writes_l = cols.writes
    switch_pos = scan.switch_pos
    switch_page = scan.switch_page
    switch_next = scan.switch_next
    write_pos = scan.write_pos
    write_page = scan.write_page
    write_prev = scan.write_prev
    prods = scan.prods(cols, event_ms)
    searchsorted = np.searchsorted
    n = len(pages_l)

    occ = trace.occurrences()
    optr = dict.fromkeys(occ, 0)

    heap = [(indices[0], page) for page, indices in occ.items()]
    heapify(heap)
    in_heap = set(occ)

    clock = 0.0
    last_page = -1
    pos = 0
    win_events = 0
    win_start = 0

    def push(page: int, frm: int) -> None:
        """Schedule ``page``'s next occurrence at/after ``frm``."""
        if page in in_heap:
            return
        indices = occ[page]
        i = optr[page]
        end = len(indices)
        while i < end and indices[i] < frm:
            i += 1
        optr[page] = i
        if i < end:
            heappush(heap, (indices[i], page))
            in_heap.add(page)

    def advance(i: int, j: int) -> None:
        """Bulk-process the boring span ``[i, j)`` (hits only)."""
        nonlocal clock, last_page
        if i >= j:
            return
        if j - i < SHORT_SPAN:
            for k in range(i, j):
                p = pages_l[k]
                if p != last_page:
                    policy.touch(p)
                    last_page = p
                if writes_l[k]:
                    f = frames[p]
                    if not f.dirty:
                        f.dirty = True
                clock += counts_l[k] * event_ms
            return
        lo = searchsorted(switch_pos, i)
        hi = searchsorted(switch_pos, j)
        if hi > lo:
            if hi - lo == 1:
                p = pages_l[j - 1]
                policy.touch(p)
                last_page = p
            else:
                # Each switched page's last switch inside the span, in
                # ascending position order — the same dedup sequence
                # drive_fast extracts with np.unique/argsort per span.
                keep = switch_next[lo:hi] >= j
                for p in switch_page[lo:hi][keep].tolist():
                    policy.touch(p)
                last_page = pages_l[j - 1]
        wlo = searchsorted(write_pos, i)
        whi = searchsorted(write_pos, j)
        if whi > wlo:
            # Each page's first write inside the span = the span's
            # unique written pages (dirty marking is idempotent).
            keep = write_prev[wlo:whi] < i
            for p in write_page[wlo:whi][keep].tolist():
                f = frames[p]
                if not f.dirty:
                    f.dirty = True
        seg = prods[i:j].copy()
        seg[0] += clock
        np.add.accumulate(seg, out=seg)
        clock = float(seg[-1])

    while heap:
        idx, page = heappop(heap)
        in_heap.discard(page)
        frame = frames.get(page)
        interesting = (
            frame is None
            or frame.pending is not None
            or frame.valid_bits != full_mask
        )
        if idx < pos:
            if interesting:
                push(page, pos)
            continue
        if not interesting:
            continue

        if pos < idx:
            advance(pos, idx)

        sp = subpages_l[idx]
        count = counts_l[idx]
        write = writes_l[idx]
        if frame is None:
            state.last_victim = None
            clock = sim._page_fault(
                state, clock, page, sp, blocks_l[idx], write
            )
            frame = frames[page]
            last_page = page
            if state.last_victim is not None:
                push(state.last_victim, idx)
        else:
            if page != last_page:
                policy.touch(page)
                last_page = page
            if frame.pending is not None or frame.valid_bits != full_mask:
                clock = sim._touch_incomplete(
                    state, clock, page, frame, sp, blocks_l[idx],
                    write, count,
                )
            if write and not frame.dirty:
                frame.dirty = True
        clock += count * event_ms
        pos = idx + 1
        if frame.pending is not None or frame.valid_bits != full_mask:
            push(page, pos)

        win_events += 1
        if win_events == BAIL_WINDOW:
            if pos - win_start < BAIL_WINDOW * BAIL_MIN_SPAN:
                return sim._drive_reference(
                    state, cols, start=pos, clock=clock,
                    last_page=last_page,
                )
            win_events = 0
            win_start = pos

    advance(pos, n)
    return clock


def simulate_cells_timed(
    trace: "RunTrace", configs: list[SimulationConfig]
) -> list[tuple["SimulationResult", float]]:
    """:func:`simulate_cells` plus each cell's own compute seconds."""
    out: list[tuple["SimulationResult", float]] = []
    scan: TraceScan | None = None
    for config in configs:
        started = time.perf_counter()
        sim = Simulator(config)
        if batch_eligible(config):
            state, cols, recorder = sim._prepare(trace)
            if scan is None:
                scan = trace_scan(trace, cols)
            clock = drive_batch(sim, state, trace, cols, scan)
            result = sim._finish(state, clock, recorder)
        else:
            result = sim.run(trace)
        out.append((result, time.perf_counter() - started))
    return out


def simulate_cells(
    trace: "RunTrace", configs: list[SimulationConfig]
) -> list["SimulationResult"]:
    """Simulate many configurations over one trace, batched.

    Results are positionally parallel to ``configs`` and bit-identical
    to ``[simulate(trace, c) for c in configs]``; cells failing
    :func:`batch_eligible` transparently take that ordinary path.
    """
    return [result for result, _ in simulate_cells_timed(trace, configs)]
