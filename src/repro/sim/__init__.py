"""The trace-driven simulator (paper Section 3.2).

The simulator consumes a run-length-compressed memory-reference trace and
models paging to remote memory (via a configurable fetch scheme) or to
disk, using memory accesses as clock events.  It produces a
:class:`~repro.sim.results.SimulationResult` with the paging behaviour the
paper reports: fault counts and kinds, execution / subpage-latency /
page-wait time components, per-fault records, overlap attribution inputs,
and the next-subpage distance histogram.
"""

from repro.sim.batch import TraceScan, batch_eligible, simulate_cells
from repro.sim.config import SimulationConfig, memory_pages_for
from repro.sim.parallel import (
    CellEvent,
    ExecutionOptions,
    ResultCache,
    SweepJob,
    TraceRef,
    WorkerPool,
    run_cells,
)
from repro.sim.shm import SharedTraceArena, TraceHandle
from repro.sim.replacement import (
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.sim.multinode import (
    MultiNodeResult,
    NodeWorkload,
    run_multi_workload,
)
from repro.sim.results import SimulationResult, TimeComponents
from repro.sim.simulator import Simulator, simulate
from repro.sim.sweep import (
    SeedStudy,
    SweepResult,
    memory_sweep_jobs,
    run_memory_sweep,
    run_seed_study,
    run_subpage_sweep,
    subpage_sweep_jobs,
)
from repro.sim.tlb import TlbModel, TlbStats

__all__ = [
    "CellEvent",
    "ClockPolicy",
    "ExecutionOptions",
    "FifoPolicy",
    "LruPolicy",
    "MultiNodeResult",
    "NodeWorkload",
    "RandomPolicy",
    "ReplacementPolicy",
    "ResultCache",
    "SeedStudy",
    "SharedTraceArena",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SweepJob",
    "SweepResult",
    "TimeComponents",
    "TlbModel",
    "TlbStats",
    "TraceHandle",
    "TraceRef",
    "TraceScan",
    "WorkerPool",
    "batch_eligible",
    "make_policy",
    "memory_pages_for",
    "memory_sweep_jobs",
    "run_cells",
    "run_memory_sweep",
    "run_multi_workload",
    "run_seed_study",
    "run_subpage_sweep",
    "simulate",
    "simulate_cells",
    "subpage_sweep_jobs",
]
