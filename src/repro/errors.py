"""Exception hierarchy for the subpage-GMS reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError, ValueError):
    """An invalid simulation, network, or workload configuration."""


class TraceError(ReproError):
    """A malformed or inconsistent memory-reference trace."""


class TraceFormatError(TraceError):
    """A trace file could not be decoded."""


class IngestError(TraceFormatError):
    """A raw reference stream could not be ingested.

    Raised by :mod:`repro.ingest` when a text trace line is garbled
    (the message names the 1-based line number) or a binary dump is
    truncated (the message names the byte offset).
    """


class SchemeError(ReproError):
    """A fetch scheme was asked to do something inconsistent."""


class UnknownSchemeError(SchemeError, KeyError):
    """A scheme name was not found in the registry."""

    def __str__(self) -> str:
        # KeyError quotes its message (repr of the missing key); show the
        # registry diagnostic plainly instead.
        return str(self.args[0]) if self.args else ""


class GmsError(ReproError):
    """A global-memory-system protocol violation."""


class PageNotFoundError(GmsError, KeyError):
    """A getpage request named a page the directory does not know."""


class CapacityError(GmsError):
    """A node was asked to hold more frames than it has."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""
