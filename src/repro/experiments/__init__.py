"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run()`` returning a typed result object and
``render(result)`` returning the plain-text table/series the paper
reports.  ``repro.experiments.registry`` lists them all; the benchmark
harness under ``benchmarks/`` regenerates each one.
"""

from repro.experiments.registry import EXPERIMENTS, get_experiment, run_all

__all__ = ["EXPERIMENTS", "get_experiment", "run_all"]
