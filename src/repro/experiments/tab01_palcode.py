"""Table 1: performance of PALcode load/store emulation.

Regenerates the cycle/time table from the PALcode cost model and checks
the paper's two headline ratios: a fast load is ~6.5x slower than an L2
cache hit and ~1.6x faster than an L2 miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.palcode.costs import PAL_COSTS, PalOperation


@dataclass(frozen=True, slots=True)
class Tab01Result:
    rows: list[tuple[str, int, float]]  # (operation, cycles, time ns)

    def time_ns(self, operation: PalOperation) -> float:
        for name, _, ns in self.rows:
            if name == operation.value:
                return ns
        raise KeyError(operation)

    @property
    def fast_load_vs_l2_hit(self) -> float:
        return self.time_ns(PalOperation.FAST_LOAD) / self.time_ns(
            PalOperation.L2_CACHE_HIT
        )

    @property
    def l2_miss_vs_fast_load(self) -> float:
        return self.time_ns(PalOperation.L2_MISS) / self.time_ns(
            PalOperation.FAST_LOAD
        )


def run() -> Tab01Result:
    rows = [
        (op.value, timing.cycles, timing.time_ns)
        for op, timing in PAL_COSTS.items()
    ]
    return Tab01Result(rows=rows)


def render(result: Tab01Result) -> str:
    table = format_table(
        ["Operation", "Cycles", "Time (ns)"],
        [(n, c, round(t)) for n, c, t in result.rows],
        title="Table 1: PALcode load/store emulation (266 MHz Alpha 250)",
    )
    notes = [
        "",
        f"fast load / L2 hit   = {result.fast_load_vs_l2_hit:.1f}x "
        f"(paper: 6.5x)",
        f"L2 miss / fast load  = {result.l2_miss_vs_fast_load:.1f}x "
        f"(paper: 1.6x)",
    ]
    return table + "\n".join(notes)
