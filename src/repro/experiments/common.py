"""Shared experiment plumbing: cached traces and cached simulation runs.

Several figures reuse the same runs (Figures 4, 5, 6 all view the
Modula-3 1/2-mem sweep); caching keyed on the run parameters keeps the
whole experiment suite fast and the benches honest (each bench still
*computes* its figure; it just shares substrate runs).
"""

from __future__ import annotations

from functools import lru_cache

from repro.sim.config import SimulationConfig, memory_pages_for
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.compress import RunTrace
from repro.trace.synth.apps import build_app_trace

#: The paper's three memory configurations (Section 4.1).
MEMORY_FRACTIONS: dict[str, float] = {
    "full-mem": 1.0,
    "1/2-mem": 0.5,
    "1/4-mem": 0.25,
}

#: Subpage sizes evaluated throughout the paper, largest first (Figure 3
#: bar order).
SUBPAGE_SIZES: tuple[int, ...] = (4096, 2048, 1024, 512, 256)

#: The trace seed used by all experiments (results are deterministic).
TRACE_SEED = 0


@lru_cache(maxsize=16)
def get_trace(app: str, seed: int = TRACE_SEED) -> RunTrace:
    """The named application's trace (built once per process)."""
    return build_app_trace(app, seed=seed)


@lru_cache(maxsize=256)
def run_cached(
    app: str,
    memory_fraction: float,
    scheme: str = "eager",
    subpage_bytes: int = 1024,
    backing: str = "remote",
    pipeline_count: int = 2,
    segment_subpages: int = 1,
    interrupt_ms: float = 0.0,
    double_initial: bool = False,
    congestion: bool = True,
    replacement: str = "lru",
    protection: str = "tlb",
    tlb_entries: int = 0,
) -> SimulationResult:
    """Run (or fetch) one simulation with the standard configuration.

    Scheme keyword arguments are flattened into the signature so the
    cache key stays hashable.
    """
    trace = get_trace(app)
    scheme_kwargs = {}
    if scheme == "pipelined":
        scheme_kwargs = {
            "pipeline_count": pipeline_count,
            "segment_subpages": segment_subpages,
            "interrupt_ms": interrupt_ms,
            "double_initial": double_initial,
        }
    config = SimulationConfig(
        memory_pages=memory_pages_for(trace, memory_fraction),
        scheme=scheme,
        scheme_kwargs=scheme_kwargs,
        subpage_bytes=subpage_bytes,
        backing=backing,
        congestion=congestion,
        replacement=replacement,
        protection=protection,
        tlb_entries=tlb_entries,
    )
    return simulate(trace, config)


def fullpage_run(
    app: str, memory_fraction: float, backing: str = "remote"
) -> SimulationResult:
    """The 8K fullpage baseline for an app/memory configuration."""
    return run_cached(
        app,
        memory_fraction,
        scheme="fullpage",
        subpage_bytes=8192,
        backing=backing,
    )


def disk_run(app: str, memory_fraction: float) -> SimulationResult:
    """The disk-backed (no network memory) baseline."""
    return fullpage_run(app, memory_fraction, backing="disk")


def memory_label_fraction(label: str) -> float:
    return MEMORY_FRACTIONS[label]
