"""Shared experiment plumbing: cached traces and cached simulation runs.

Several figures reuse the same runs (Figures 4, 5, 6 all view the
Modula-3 1/2-mem sweep); caching keyed on the run parameters keeps the
whole experiment suite fast and the benches honest (each bench still
*computes* its figure; it just shares substrate runs).

The in-process run cache is seedable: :func:`warm_runs` fans missing
cells out through :func:`repro.sim.parallel.run_cells`, so grid figures
(3 and 9) compute their cells in parallel when the ambient
:class:`~repro.sim.parallel.ExecutionOptions` (set by the CLI's
``--workers`` flag or ``REPRO_WORKERS``) ask for workers, and reuse an
on-disk result cache when one is configured.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Any, Iterable, Iterator

from repro.sim.config import SimulationConfig, memory_pages_for
from repro.sim.parallel import (
    ExecutionOptions,
    SweepJob,
    WorkerPool,
    run_cells,
)
from repro.sim.results import SimulationResult
from repro.trace.compress import RunTrace
from repro.trace.synth.apps import build_app_trace

#: The paper's three memory configurations (Section 4.1).
MEMORY_FRACTIONS: dict[str, float] = {
    "full-mem": 1.0,
    "1/2-mem": 0.5,
    "1/4-mem": 0.25,
}

#: Subpage sizes evaluated throughout the paper, largest first (Figure 3
#: bar order).
SUBPAGE_SIZES: tuple[int, ...] = (4096, 2048, 1024, 512, 256)

#: The trace seed used by all experiments (results are deterministic).
TRACE_SEED = 0

#: Defaults for every run parameter, in cache-key order.
_RUN_DEFAULTS: dict[str, Any] = {
    "scheme": "eager",
    "subpage_bytes": 1024,
    "backing": "remote",
    "pipeline_count": 2,
    "segment_subpages": 1,
    "interrupt_ms": 0.0,
    "double_initial": False,
    "congestion": True,
    "replacement": "lru",
    "protection": "tlb",
    "tlb_entries": 0,
}

#: In-process result cache, keyed by normalized run spec.
_RUN_CACHE: dict[tuple, SimulationResult] = {}

#: Ambient execution options (lazily initialized from the environment).
_OPTIONS: ExecutionOptions | None = None


def execution_options() -> ExecutionOptions:
    """The ambient options experiment runs execute under."""
    global _OPTIONS
    if _OPTIONS is None:
        _OPTIONS = ExecutionOptions.from_env()
    return _OPTIONS


def set_execution_options(options: ExecutionOptions) -> None:
    global _OPTIONS
    _OPTIONS = options


@contextmanager
def execution_scope(options: ExecutionOptions) -> Iterator[ExecutionOptions]:
    """Temporarily install ``options`` as the ambient execution options.

    When the options ask for workers but carry no
    :class:`~repro.sim.parallel.WorkerPool`, the scope creates one and
    owns it: every ``run_cells`` batch inside the scope reuses the same
    worker processes and shared-memory trace arena, and the pool (and
    its arena's segments) is torn down on scope exit.  A pool installed
    by the caller — e.g. the CLI, which keeps one pool alive across all
    the experiments of an invocation — is left untouched.
    """
    global _OPTIONS
    previous = _OPTIONS
    _OPTIONS = options
    owned: WorkerPool | None = None
    if options.pool is None and options.workers > 1:
        options.pool = owned = WorkerPool(options.workers)
    try:
        yield options
    finally:
        _OPTIONS = previous
        if owned is not None:
            if options.pool is owned:
                options.pool = None
            owned.close()


@lru_cache(maxsize=16)
def get_trace(app: str, seed: int = TRACE_SEED) -> RunTrace:
    """The named application's trace (built once per process)."""
    return build_app_trace(app, seed=seed)


def _spec_key(app: str, memory_fraction: float, **kwargs: Any) -> tuple:
    merged = {**_RUN_DEFAULTS, **kwargs}
    unknown = set(merged) - set(_RUN_DEFAULTS)
    if unknown:
        raise TypeError(f"unknown run parameters: {sorted(unknown)}")
    # The ambient observe spec is part of the key: results computed with
    # observability payloads must not shadow (or be shadowed by) plain
    # runs of the same spec.
    return (app, memory_fraction, execution_options().observe) + tuple(
        merged[name] for name in _RUN_DEFAULTS
    )


def _spec_config(
    trace: RunTrace, memory_fraction: float, **kwargs: Any
) -> SimulationConfig:
    merged = {**_RUN_DEFAULTS, **kwargs}
    scheme_kwargs = {}
    if merged["scheme"] == "pipelined":
        scheme_kwargs = {
            "pipeline_count": merged["pipeline_count"],
            "segment_subpages": merged["segment_subpages"],
            "interrupt_ms": merged["interrupt_ms"],
            "double_initial": merged["double_initial"],
        }
    return SimulationConfig(
        memory_pages=memory_pages_for(trace, memory_fraction),
        scheme=merged["scheme"],
        scheme_kwargs=scheme_kwargs,
        subpage_bytes=merged["subpage_bytes"],
        backing=merged["backing"],
        congestion=merged["congestion"],
        replacement=merged["replacement"],
        protection=merged["protection"],
        tlb_entries=merged["tlb_entries"],
        observe=execution_options().observe,
    )


def warm_runs(
    specs: Iterable[dict[str, Any]],
    workers: int | None = None,
    progress: Any = None,
) -> None:
    """Ensure every spec is in the run cache, fanning missing cells out.

    Each spec is a dict of :func:`run_cached` keyword arguments (``app``
    and ``memory_fraction`` required).  Missing cells execute through
    :func:`repro.sim.parallel.run_cells` under the ambient
    :func:`execution_options` (worker count, on-disk cache, progress
    callback), so a grid figure can compute all its cells in one
    parallel batch before reading them back serially.
    """
    options = execution_options()
    if workers is None:
        workers = options.workers
    if progress is None:
        progress = options.progress
    jobs: list[SweepJob] = []
    queued: set[tuple] = set()
    for spec in specs:
        spec = dict(spec)
        app = spec.pop("app")
        memory_fraction = spec.pop("memory_fraction")
        key = _spec_key(app, memory_fraction, **spec)
        if key in _RUN_CACHE or key in queued:
            continue
        queued.add(key)
        trace = get_trace(app)
        jobs.append(SweepJob(
            key=key,
            trace=trace,
            config=_spec_config(trace, memory_fraction, **spec),
        ))
    if jobs:
        _RUN_CACHE.update(run_cells(
            jobs,
            workers=workers,
            cache=options.cache,
            progress=progress,
            pool=options.pool,
        ))


def clear_run_cache() -> None:
    """Drop the in-process run cache (tests and memory-pressure relief)."""
    _RUN_CACHE.clear()


def harvest_observed_runs(
    seen: set[int] | None = None,
) -> list[SimulationResult]:
    """Runs in the cache carrying observability payloads, in key order.

    ``seen`` (ids of already-harvested results, updated in place) lets
    the CLI collect per-experiment deltas when several experiments run
    in one invocation.
    """
    harvested: list[SimulationResult] = []
    for result in _RUN_CACHE.values():
        if result.metrics is None and result.trace_events is None:
            continue
        if seen is not None:
            if id(result) in seen:
                continue
            seen.add(id(result))
        harvested.append(result)
    return harvested


def run_cached(
    app: str,
    memory_fraction: float,
    scheme: str = "eager",
    subpage_bytes: int = 1024,
    backing: str = "remote",
    pipeline_count: int = 2,
    segment_subpages: int = 1,
    interrupt_ms: float = 0.0,
    double_initial: bool = False,
    congestion: bool = True,
    replacement: str = "lru",
    protection: str = "tlb",
    tlb_entries: int = 0,
) -> SimulationResult:
    """Run (or fetch) one simulation with the standard configuration.

    Scheme keyword arguments are flattened into the signature so the
    cache key stays stable and hashable.
    """
    spec = {
        "scheme": scheme,
        "subpage_bytes": subpage_bytes,
        "backing": backing,
        "pipeline_count": pipeline_count,
        "segment_subpages": segment_subpages,
        "interrupt_ms": interrupt_ms,
        "double_initial": double_initial,
        "congestion": congestion,
        "replacement": replacement,
        "protection": protection,
        "tlb_entries": tlb_entries,
    }
    key = _spec_key(app, memory_fraction, **spec)
    result = _RUN_CACHE.get(key)
    if result is None:
        warm_runs([{"app": app, "memory_fraction": memory_fraction, **spec}])
        result = _RUN_CACHE[key]
    return result


def fullpage_run(
    app: str, memory_fraction: float, backing: str = "remote"
) -> SimulationResult:
    """The 8K fullpage baseline for an app/memory configuration."""
    return run_cached(
        app,
        memory_fraction,
        scheme="fullpage",
        subpage_bytes=8192,
        backing=backing,
    )


def disk_run(app: str, memory_fraction: float) -> SimulationResult:
    """The disk-backed (no network memory) baseline."""
    return fullpage_run(app, memory_fraction, backing="disk")


def memory_label_fraction(label: str) -> float:
    return MEMORY_FRACTIONS[label]
