"""The reproduction scorecard: every paper-vs-measured check as data.

EXPERIMENTS.md narrates the comparison; this module *computes* it.  Each
:class:`Claim` pairs a quantitative statement from the paper with the
reproduction's measured value and an acceptance band.  The scorecard is
what "the reproduction holds" means, in one machine-checkable place:

    python -m repro.experiments scorecard
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.overlap import attribute_overlap
from repro.analysis.report import format_table
from repro.experiments import common
from repro.net.latency import CalibratedLatencyModel
from repro.trace.synth.apps import (
    APP_MODELS,
    classic_app_names,
    modern_app_names,
)


@dataclass(frozen=True, slots=True)
class Claim:
    """One checkable paper statement."""

    claim_id: str
    statement: str
    paper_value: str
    measured: float
    lo: float
    hi: float
    unit: str = ""

    @property
    def ok(self) -> bool:
        return self.lo <= self.measured <= self.hi

    @property
    def measured_str(self) -> str:
        if self.unit == "%":
            return f"{self.measured * 100:.1f}%"
        if self.unit == "x":
            return f"{self.measured:.2f}x"
        return f"{self.measured:.3g}{self.unit}"


@dataclass(frozen=True, slots=True)
class Scorecard:
    claims: list[Claim]

    @property
    def passed(self) -> int:
        return sum(claim.ok for claim in self.claims)

    @property
    def total(self) -> int:
        return len(self.claims)

    @property
    def all_ok(self) -> bool:
        return self.passed == self.total

    def failing(self) -> list[Claim]:
        return [claim for claim in self.claims if not claim.ok]


def run() -> Scorecard:
    claims: list[Claim] = []
    model = CalibratedLatencyModel()

    claims.append(
        Claim(
            "latency-1k",
            "1K subpage fault completes in ~0.5 ms (abstract)",
            "0.52 ms",
            model.subpage_latency_ms(1024),
            0.50,
            0.54,
            " ms",
        )
    )
    claims.append(
        Claim(
            "latency-third",
            "1K subpage fault is one third of a fullpage fault",
            "1/3",
            model.subpage_latency_ms(1024) / model.fullpage_latency_ms(),
            0.30,
            0.38,
        )
    )

    # Figure 3 (Modula-3 across memory sizes).
    for fraction, label, lo, hi in (
        (1.0, "full-mem", 1.5, 2.5),
        (0.5, "1/2-mem", 1.7, 2.5),
    ):
        disk = common.disk_run("modula3", fraction)
        full = common.fullpage_run("modula3", fraction)
        claims.append(
            Claim(
                f"gms-vs-disk-{label}",
                f"fullpage GMS beats disk at {label} (paper 1.7-2.2x)",
                "1.7-2.2x",
                full.speedup_vs(disk),
                lo,
                hi,
                "x",
            )
        )
    half_full = common.fullpage_run("modula3", 0.5)
    half_eager = common.run_cached(
        "modula3", 0.5, scheme="eager", subpage_bytes=1024
    )
    claims.append(
        Claim(
            "m3-half-1k",
            "Modula-3 1/2-mem 1K improvement (paper 25%)",
            "25%",
            half_eager.improvement_vs(half_full),
            0.18,
            0.35,
            "%",
        )
    )

    # Figure 9 bands across the paper's applications.
    eager_improvements = []
    pipelined_improvements = []
    io_shares = {}
    for app in classic_app_names():
        full = common.fullpage_run(app, 0.5)
        eager = common.run_cached(
            app, 0.5, scheme="eager", subpage_bytes=1024
        )
        piped = common.run_cached(
            app, 0.5, scheme="pipelined", subpage_bytes=1024
        )
        eager_improvements.append((app, eager.improvement_vs(full)))
        pipelined_improvements.append((app, piped.improvement_vs(full)))
        io_shares[app] = attribute_overlap(eager).io_share
    claims.append(
        Claim(
            "fig9-eager-min",
            "worst app gains >= ~20% with eager 1K (paper: 20%)",
            "20%",
            min(v for _, v in eager_improvements),
            0.15,
            0.30,
            "%",
        )
    )
    claims.append(
        Claim(
            "fig9-eager-max",
            "best app gains ~44% with eager 1K (paper: 44%)",
            "44%",
            max(v for _, v in eager_improvements),
            0.35,
            0.55,
            "%",
        )
    )
    claims.append(
        Claim(
            "fig9-pipe-max",
            "best app gains ~54% with pipelining (paper: 54%)",
            "54%",
            max(v for _, v in pipelined_improvements),
            0.45,
            0.65,
            "%",
        )
    )
    best_eager = max(eager_improvements, key=lambda kv: kv[1])[0]
    claims.append(
        Claim(
            "fig9-gdb-top",
            "gdb (burstiest) gains most (paper Figure 10 analysis)",
            "gdb",
            1.0 if best_eager == "gdb" else 0.0,
            1.0,
            1.0,
        )
    )
    gdb_is_most_io_bound = max(io_shares, key=io_shares.get) == "gdb"
    claims.append(
        Claim(
            "fig9-io-gdb",
            "gdb has the highest I/O-overlap share (paper: 83%)",
            "83%",
            io_shares["gdb"] if gdb_is_most_io_bound else 0.0,
            0.7,
            1.01,
            "%",
        )
    )

    # Figure 8: pipelining's page_wait cut at 1K (paper: 42%).
    piped = common.run_cached(
        "modula3", 0.5, scheme="pipelined", subpage_bytes=1024
    )
    pw_cut = 1.0 - (
        piped.components.page_wait_ms
        / max(half_eager.components.page_wait_ms, 1e-9)
    )
    claims.append(
        Claim(
            "fig8-pw-cut",
            "pipelining cuts page_wait by ~42% at 1K (Figure 8)",
            "42%",
            pw_cut,
            0.25,
            0.65,
            "%",
        )
    )

    # Figure 7: +1 dominance.
    from repro.analysis.distances import distance_distribution

    dist = distance_distribution(half_eager)
    claims.append(
        Claim(
            "fig7-plus-one",
            "next-subpage distance +1 dominates (Figure 7)",
            "~50%",
            dist.probability(1),
            0.30,
            0.70,
            "%",
        )
    )

    # Workload zoo: calibration + the figZOO policy-ranking flips.
    # Design bands (not 1996 measurements) — see docs/WORKLOADS.md.
    for app in modern_app_names():
        lo, hi = APP_MODELS[app].paper_fault_range
        full = common.fullpage_run(app, 0.5)
        claims.append(
            Claim(
                f"zoo-{app}-faults",
                f"{app} 1/2-mem fault count within design band",
                f"{lo}-{hi}",
                float(full.page_faults),
                float(lo),
                float(hi),
            )
        )

    def _improvement(app: str, scheme: str, subpage: int) -> float:
        full = common.fullpage_run(app, 0.5)
        run = common.run_cached(
            app, 0.5, scheme=scheme, subpage_bytes=subpage
        )
        return run.improvement_vs(full)

    claims.append(
        Claim(
            "zoo-mltrain-coarse",
            "mltrain prefers coarse fetch: eager@4K beats eager@1K "
            "(every 1996 app reverses this)",
            ">= +5pp",
            _improvement("mltrain", "eager", 4096)
            - _improvement("mltrain", "eager", 1024),
            0.05,
            1.0,
            "%",
        )
    )
    claims.append(
        Claim(
            "zoo-graph-fine",
            "graph prefers fine pipelining: piped@256 beats piped@1K "
            "(every 1996 app reverses this)",
            "> 0pp",
            _improvement("graph", "pipelined", 256)
            - _improvement("graph", "pipelined", 1024),
            0.005,
            1.0,
            "%",
        )
    )
    claims.append(
        Claim(
            "zoo-classic-1k",
            "modula3 keeps the paper's 1K pipelining sweet spot "
            "(piped@1K beats piped@256)",
            "> 0pp",
            _improvement("modula3", "pipelined", 1024)
            - _improvement("modula3", "pipelined", 256),
            0.005,
            1.0,
            "%",
        )
    )

    return Scorecard(claims=claims)


def render(scorecard: Scorecard) -> str:
    rows = [
        (
            "PASS" if claim.ok else "FAIL",
            claim.claim_id,
            claim.statement,
            claim.paper_value,
            claim.measured_str,
        )
        for claim in scorecard.claims
    ]
    table = format_table(
        ["", "id", "claim", "paper", "measured"],
        rows,
        title="Reproduction scorecard",
    )
    return (
        table
        + f"\n\n{scorecard.passed}/{scorecard.total} claims within band"
    )
