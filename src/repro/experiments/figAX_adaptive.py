"""Figure AX (extension): adaptive fetch policy vs static pipelining.

Not a figure from the paper — an extension built on its Section 4.3
observation that the pipelined transfer order is a *prediction* of the
access order.  The static scheme hard-codes the +1/-1 neighbor guess;
the adaptive scheme (:mod:`repro.policy`) learns each page's stride
online and reorders/deepens the pipeline when confident.  This
experiment compares the two across all five applications under memory
pressure (1/2 and 1/4 memory, 1K subpages) and reports the predictor's
scoreboard alongside the runtime delta.

The expectation encoded in ``bench_abl_adaptive_policy.py``: the
sequential-heavy applications (Modula-3 compiles are dominated by
stride-8 source scans) gain measurably at 1/2 memory, and no
application collapses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.experiments import common
from repro.sim.config import SimulationConfig, memory_pages_for
from repro.sim.parallel import SweepJob, TraceRef, run_cells
from repro.trace.synth.apps import classic_app_names

SUBPAGE_BYTES = 1024

#: Memory configurations under pressure (full-mem barely faults, so the
#: policy has nothing to predict there).
MEMORY_LABELS: dict[str, float] = {"1/2-mem": 0.5, "1/4-mem": 0.25}

#: The static arm: the adaptive scheme in transparent mode — provably
#: bit-identical to ``SubpagePipelining`` (the CI policy-smoke job and
#: ``tests/sim/test_adaptive_equivalence.py`` both hold it to that).
STATIC_KWARGS: dict = {"predictor": "static"}

#: The adaptive arm: stride-majority prediction, pipeline deepened to 6
#: messages at full confidence.
ADAPTIVE_KWARGS: dict = {"predictor": "stride", "max_depth": 6}


@dataclass(frozen=True, slots=True)
class FigAXRow:
    app: str
    memory: str
    static_ms: float
    adaptive_ms: float
    improvement: float
    pred_hit_rate: float
    coverage: float
    wasted_prefetch_kb: float
    lazy_fallbacks: int


@dataclass(frozen=True, slots=True)
class FigAXResult:
    rows: list[FigAXRow]

    def row(self, app: str, memory: str) -> FigAXRow:
        for r in self.rows:
            if r.app == app and r.memory == memory:
                return r
        raise KeyError((app, memory))

    @property
    def best_improvement(self) -> float:
        return max(r.improvement for r in self.rows)


def _config(trace_pages: int, scheme_kwargs: dict) -> SimulationConfig:
    return SimulationConfig(
        memory_pages=trace_pages,
        scheme="adaptive",
        scheme_kwargs=dict(scheme_kwargs),
        subpage_bytes=SUBPAGE_BYTES,
        # The per-fault raw material is not used here; keep the cells
        # lean so the grid stays fast-engine friendly.
        record_faults=False,
        track_distances=False,
    )


def run() -> FigAXResult:
    # Both arms of every (app, memory) cell in one parallel batch; cells
    # bypass common.run_cached because its flattened signature cannot
    # name predictor arguments.
    options = common.execution_options()
    jobs: list[SweepJob] = []
    for app in classic_app_names():
        trace = common.get_trace(app)
        for memory, fraction in MEMORY_LABELS.items():
            pages = memory_pages_for(trace, fraction)
            for arm, kwargs in (
                ("static", STATIC_KWARGS),
                ("adaptive", ADAPTIVE_KWARGS),
            ):
                jobs.append(SweepJob(
                    key=(app, memory, arm),
                    trace=TraceRef(app, seed=common.TRACE_SEED),
                    config=_config(pages, kwargs),
                ))
    results = run_cells(
        jobs,
        workers=options.workers,
        cache=options.cache,
        progress=options.progress,
        pool=options.pool,
    )

    rows = []
    for app in classic_app_names():
        for memory in MEMORY_LABELS:
            static = results[(app, memory, "static")]
            adaptive = results[(app, memory, "adaptive")]
            stats = adaptive.policy_stats
            rows.append(FigAXRow(
                app=app,
                memory=memory,
                static_ms=static.total_ms,
                adaptive_ms=adaptive.total_ms,
                improvement=adaptive.improvement_vs(static),
                pred_hit_rate=stats.get("pred_hit_rate", 0.0),
                coverage=stats.get("coverage", 0.0),
                wasted_prefetch_kb=stats.get("wasted_prefetch_bytes", 0.0)
                / 1024.0,
                lazy_fallbacks=int(stats.get("lazy_fallbacks", 0.0)),
            ))
    return FigAXResult(rows=rows)


def render(result: FigAXResult) -> str:
    rows = [
        (
            r.app,
            r.memory,
            f"{r.static_ms:.0f}",
            f"{r.adaptive_ms:.0f}",
            percent(r.improvement),
            percent(r.pred_hit_rate, 0),
            f"{r.wasted_prefetch_kb:.0f}",
        )
        for r in result.rows
    ]
    table = format_table(
        ["app", "memory", "static ms", "adaptive ms", "cut",
         "pred hits", "wasted KB"],
        rows,
        title=(
            "Figure AX (extension): static pipelining vs adaptive "
            "stride policy, 1K subpages"
        ),
    )
    notes = [
        "",
        f"best adaptive cut: {percent(result.best_improvement)}",
    ]
    return table + "\n".join(notes)
