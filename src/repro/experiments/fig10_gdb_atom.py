"""Figure 10: temporal clustering for gdb and Atom.

gdb's faults arrive in steep bursts (library loads); Atom's arrive at a
smooth, nearly uniform rate.  The paper uses the contrast to explain why
gdb benefits far more from eager fullpage fetch than Atom does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clustering import (
    ClusteringCurve,
    burstiness_index,
    clustering_curve,
    fraction_in_bursts,
)
from repro.experiments import common
from repro.experiments.fig06_clustering import _ascii_curve

MEMORY_FRACTION = 0.5
APPS = ("gdb", "atom")


@dataclass(frozen=True, slots=True)
class Fig10Result:
    curves: dict[str, ClusteringCurve]
    burstiness: dict[str, float]
    burst_fraction: dict[str, float]

    @property
    def gdb_burstier_than_atom(self) -> bool:
        """The paper's Figure 10 contrast, via the burst-fraction metric.

        Most of gdb's faults arrive during high-fault-rate periods while
        atom's arrive at a low, steady rate.  (The coefficient of
        variation is *not* the right metric here: within a burst, stall
        time makes gdb's inter-fault gaps very regular.)
        """
        return self.burst_fraction["gdb"] > self.burst_fraction["atom"]


def run() -> Fig10Result:
    curves = {}
    burst = {}
    frac = {}
    for app in APPS:
        result = common.run_cached(
            app, MEMORY_FRACTION, scheme="eager", subpage_bytes=1024
        )
        curve = clustering_curve(result, label=app)
        curves[app] = curve
        burst[app] = burstiness_index(curve)
        frac[app] = fraction_in_bursts(curve)
    return Fig10Result(
        curves=curves, burstiness=burst, burst_fraction=frac
    )


def render(result: Fig10Result) -> str:
    out = ["Figure 10: temporal clustering, gdb vs Atom (1/2-mem)"]
    for app in APPS:
        out.append("")
        out.append(f"{app}:")
        out.append(_ascii_curve(result.curves[app]))
        out.append(
            f"  burstiness {result.burstiness[app]:.2f}, fraction in "
            f"bursts {result.burst_fraction[app]:.2f}"
        )
    out.append("")
    out.append(
        "check: gdb burstier than atom -> "
        f"{result.gdb_burstier_than_atom} (paper: gdb's steep jumps vs "
        "atom's smooth rise)"
    )
    return "\n".join(out)
