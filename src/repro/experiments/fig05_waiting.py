"""Figure 5: sorted per-fault waiting times per subpage size (Modula-3).

Each curve (one per subpage size, at 1/2-mem) must show the three-segment
structure of Section 4.2: a best-case plateau at the subpage latency, a
worst-case plateau at the fullpage latency, and a small middle region.
The paper's surprise: a *large* fraction of faults achieve best-case
overlap, because faults cluster and overlap each other's rest-of-page
transfers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.analysis.waiting import WaitingCurve, waiting_curve
from repro.experiments import common
from repro.net.latency import CalibratedLatencyModel

APP = "modula3"
MEMORY_FRACTION = 0.5


@dataclass(frozen=True, slots=True)
class Fig05Result:
    app: str
    curves: dict[int, WaitingCurve]  # subpage size -> curve

    def best_case_fraction(self, subpage_bytes: int) -> float:
        return self.curves[subpage_bytes].segments().best_case_fraction


def run(app: str = APP) -> Fig05Result:
    latency = CalibratedLatencyModel()
    curves = {}
    for size in common.SUBPAGE_SIZES:
        result = common.run_cached(
            app, MEMORY_FRACTION, scheme="eager", subpage_bytes=size
        )
        curves[size] = waiting_curve(
            result,
            subpage_latency_ms=latency.subpage_latency_ms(size),
            fullpage_latency_ms=latency.fullpage_latency_ms(),
            label=f"sp_{size}",
        )
    return Fig05Result(app=app, curves=curves)


def render(result: Fig05Result) -> str:
    rows = []
    for size, curve in sorted(result.curves.items(), reverse=True):
        seg = curve.segments()
        rows.append(
            [
                curve.label,
                curve.num_faults,
                round(curve.left_intercept_ms, 2),
                round(curve.right_intercept_ms, 2),
                percent(seg.best_case_fraction),
                percent(seg.worst_case_fraction),
            ]
        )
    table = format_table(
        [
            "curve",
            "faults",
            "worst wait ms",
            "best wait ms",
            "best-case %",
            "worst-case %",
        ],
        rows,
        title=(
            f"Figure 5: sorted per-fault waiting times, {result.app} "
            "at 1/2-mem"
        ),
    )
    notes = [
        "",
        "best wait ~= subpage latency (right plateau); worst wait ~= "
        "fullpage latency (left plateau)",
    ]
    return table + "\n".join(notes)
