"""Figure 8: eager fullpage fetch vs subpage pipelining (Modula-3, 1/2-mem).

The pipelining scheme ships the +1 and -1 subpages individually behind the
faulted one (assuming an intelligent controller: zero receiver CPU cost
per pipelined message), then the remainder in one message.  Shape
targets at 1K: page_wait falls by ~42% while the whole-run reduction is
~10%; pipelining cannot shrink sp_latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.analysis.speedup import ImprovementSummary, improvement_summary
from repro.experiments import common

APP = "modula3"
MEMORY_FRACTION = 0.5


@dataclass(frozen=True, slots=True)
class Fig08Result:
    app: str
    #: subpage size -> (eager components, pipelined components) in ms as
    #: (exec, sp_latency, page_wait).
    components: dict[
        int,
        tuple[tuple[float, float, float], tuple[float, float, float]],
    ]
    summaries: dict[int, ImprovementSummary]

    def page_wait_reduction(self, subpage_bytes: int) -> float:
        return self.summaries[subpage_bytes].page_wait_reduction

    def total_reduction(self, subpage_bytes: int) -> float:
        return self.summaries[subpage_bytes].improvement


def run(app: str = APP) -> Fig08Result:
    components = {}
    summaries = {}
    for size in common.SUBPAGE_SIZES:
        eager = common.run_cached(
            app, MEMORY_FRACTION, scheme="eager", subpage_bytes=size
        )
        piped = common.run_cached(
            app, MEMORY_FRACTION, scheme="pipelined", subpage_bytes=size
        )
        components[size] = (
            (
                eager.components.exec_ms,
                eager.components.sp_latency_ms,
                eager.components.page_wait_ms,
            ),
            (
                piped.components.exec_ms,
                piped.components.sp_latency_ms,
                piped.components.page_wait_ms,
            ),
        )
        summaries[size] = improvement_summary(eager, piped)
    return Fig08Result(
        app=app, components=components, summaries=summaries
    )


def render(result: Fig08Result) -> str:
    rows = []
    for size in sorted(result.components, reverse=True):
        (e_ex, e_sp, e_pw), (p_ex, p_sp, p_pw) = result.components[size]
        rows.append(
            [
                f"sp_{size}",
                round(e_ex + e_sp + e_pw, 1),
                round(p_ex + p_sp + p_pw, 1),
                round(e_pw, 1),
                round(p_pw, 1),
                percent(result.page_wait_reduction(size)),
                percent(result.total_reduction(size)),
            ]
        )
    return format_table(
        [
            "size",
            "eager ms",
            "pipelined ms",
            "eager pw",
            "piped pw",
            "pw cut",
            "total cut",
        ],
        rows,
        title=(
            f"Figure 8: eager vs subpage pipelining, {result.app} at "
            "1/2-mem (+1/-1 pipelined, ideal controller)"
        ),
    )
