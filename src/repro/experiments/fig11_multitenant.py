"""Figure MT (extension): subpage pipelining under multi-tenant contention.

Not a figure from the paper — the experiment ROADMAP item 3 asks for and
the 1996 study could not produce: N tenants faulting *concurrently*
against one shared GMS cluster (:mod:`repro.sim.multitenant`), their
subpage pipelines colliding on a shared fabric, judged on per-tenant
tail latency (p50/p99), slowdown against a solo baseline, and a
max/min-slowdown fairness gauge (:mod:`repro.obs.tenants`).

The grid is tenant count x fetch scheme x subpage size.  Each tenant
runs a distinctly-seeded scaled-down gdb workload (the paper's most
latency-sensitive app) at half-footprint memory; baselines are the same
tenant workload run solo on the same cluster layout.  The question the
grid answers: does pipelining's single-tenant win survive when the
background subpage streams of N tenants share the wire — or does the
extra background traffic hurt the tail more than the overlap helps?
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any

from repro.analysis.report import format_table
from repro.obs.tenants import TenantLatencyReport
from repro.sim.multinode import NodeWorkload
from repro.sim.multitenant import MultiTenantResult, run_multi_tenant
from repro.trace.synth.apps import build_app_trace

TENANT_COUNTS: tuple[int, ...] = (1, 2, 4)
SCHEMES: tuple[str, ...] = ("eager", "pipelined")
SUBPAGE_SIZES: tuple[int, ...] = (4096, 1024)

#: Scale factor for the per-tenant gdb traces: keeps the full grid (28
#: tenant simulations) inside the tier-1 budget while leaving hundreds
#: of faults per tenant for the tail estimates.
TRACE_SCALE = 0.1

#: Idle nodes supplying the shared global cache.
IDLE_NODES = 2

_SEED = 0


@dataclass(frozen=True, slots=True)
class FigMTRow:
    """One tenant's outcome inside one grid cell."""

    tenants: int
    scheme: str
    subpage_bytes: int
    tenant: str
    faults: int
    p50_ms: float
    p99_ms: float
    mean_ms: float
    total_ms: float
    slowdown: float
    #: Cell-level fairness (max/min slowdown), repeated on each row.
    fairness: float
    cross_queueing_ms: float
    cross_preemption_ms: float


@dataclass(frozen=True, slots=True)
class FigMTResult:
    rows: list[FigMTRow]
    #: Tenant-metrics JSON (``repro.obs.tenants/v1``) for the most
    #: contended cell — max tenants, pipelined, smallest subpage; what
    #: the CI smoke job validates.
    tenant_metrics: dict[str, Any]

    def cell(
        self, tenants: int, scheme: str, subpage_bytes: int
    ) -> list[FigMTRow]:
        return [
            r for r in self.rows
            if r.tenants == tenants and r.scheme == scheme
            and r.subpage_bytes == subpage_bytes
        ]


@lru_cache(maxsize=8)
def _tenant_trace(index: int):
    return build_app_trace("gdb", seed=_SEED + index, scale=TRACE_SCALE)


def _workload(index: int, scheme: str, subpage_bytes: int) -> NodeWorkload:
    trace = _tenant_trace(index)
    return NodeWorkload(
        name=f"t{index}",
        trace=trace,
        memory_pages=max(4, trace.footprint_pages() // 2),
        scheme=scheme,
        subpage_bytes=subpage_bytes,
    )


@lru_cache(maxsize=64)
def _solo_total_ms(index: int, scheme: str, subpage_bytes: int) -> float:
    """The tenant's solo runtime on the same cluster layout (the
    slowdown denominator)."""
    solo = run_multi_tenant(
        [_workload(index, scheme, subpage_bytes)],
        idle_nodes=IDLE_NODES, seed=_SEED,
    )
    return solo.per_tenant[f"t{index}"].total_ms


def _run_cell(
    tenants: int, scheme: str, subpage_bytes: int
) -> tuple[MultiTenantResult, TenantLatencyReport]:
    workloads = [
        _workload(i, scheme, subpage_bytes) for i in range(tenants)
    ]
    result = run_multi_tenant(
        workloads, idle_nodes=IDLE_NODES, seed=_SEED
    )
    baselines = {
        f"t{i}": _solo_total_ms(i, scheme, subpage_bytes)
        for i in range(tenants)
    }
    return result, result.latency_report(baselines)


def run() -> FigMTResult:
    rows: list[FigMTRow] = []
    tenant_metrics: dict[str, Any] = {}
    for tenants in TENANT_COUNTS:
        for scheme in SCHEMES:
            for subpage_bytes in SUBPAGE_SIZES:
                result, report = _run_cell(
                    tenants, scheme, subpage_bytes
                )
                fairness = report.fairness()
                for name, latency in report.tenants.items():
                    cross = result.cross_stats.get(name, {})
                    rows.append(FigMTRow(
                        tenants=tenants,
                        scheme=scheme,
                        subpage_bytes=subpage_bytes,
                        tenant=name,
                        faults=latency.faults,
                        p50_ms=latency.p50_ms,
                        p99_ms=latency.p99_ms,
                        mean_ms=latency.mean_ms,
                        total_ms=latency.total_ms,
                        slowdown=latency.slowdown or 1.0,
                        fairness=fairness,
                        cross_queueing_ms=cross.get(
                            "cross_queueing_delay_ms", 0.0
                        ),
                        cross_preemption_ms=cross.get(
                            "cross_preemption_delay_ms", 0.0
                        ),
                    ))
                if (
                    tenants == max(TENANT_COUNTS)
                    and scheme == "pipelined"
                    and subpage_bytes == min(SUBPAGE_SIZES)
                ):
                    tenant_metrics = report.summary()
    return FigMTResult(rows=rows, tenant_metrics=tenant_metrics)


def _cell_aggregate(rows: list[FigMTRow]) -> tuple[float, float, float]:
    """Mean slowdown, worst p99, fairness over one cell's tenants."""
    slowdown = sum(r.slowdown for r in rows) / len(rows)
    p99 = max(r.p99_ms for r in rows)
    return slowdown, p99, rows[0].fairness


def render(result: FigMTResult) -> str:
    table_rows = []
    for tenants in TENANT_COUNTS:
        for subpage_bytes in SUBPAGE_SIZES:
            for scheme in SCHEMES:
                cell = result.cell(tenants, scheme, subpage_bytes)
                slowdown, p99, fairness = _cell_aggregate(cell)
                table_rows.append((
                    str(tenants),
                    scheme,
                    str(subpage_bytes),
                    f"{slowdown:.2f}x",
                    f"{p99:.2f}",
                    f"{fairness:.2f}",
                ))
    table = format_table(
        ["tenants", "scheme", "subpage", "mean slowdown", "worst p99 ms",
         "fairness"],
        table_rows,
        title=(
            "Figure MT (extension): per-tenant slowdown and tail "
            "latency under contention (gdb tenants, 1/2-mem)"
        ),
    )

    # Pipelining's win under contention: eager vs pipelined total time
    # at each tenant count (1K subpages, the paper's headline size).
    notes = [""]
    for tenants in TENANT_COUNTS:
        eager = sum(
            r.total_ms
            for r in result.cell(tenants, "eager", min(SUBPAGE_SIZES))
        )
        pipe = sum(
            r.total_ms
            for r in result.cell(tenants, "pipelined", min(SUBPAGE_SIZES))
        )
        win = 1.0 - pipe / eager if eager > 0 else 0.0
        notes.append(
            f"pipelining win at {tenants} tenant(s), "
            f"{min(SUBPAGE_SIZES)}B subpages: {win * 100:.1f}%"
        )
    return table + "\n".join(notes)
