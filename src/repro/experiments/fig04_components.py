"""Figure 4: runtime components at 1/2 memory (Modula-3).

Breaks each subpage configuration's runtime into exec, sp_latency
(waiting for the first subpage of each faulted page) and page_wait
(stalls for the remainder).  Shape targets: sp_latency falls as subpages
shrink (paper: 55% of runtime at 4K down to 25% at 256B) while page_wait
rises (2% at 4K up to 35% at 256B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.experiments import common

APP = "modula3"
MEMORY_FRACTION = 0.5


@dataclass(frozen=True, slots=True)
class Fig04Result:
    app: str
    #: bar label -> (exec, sp_latency, page_wait, other) in ms.
    components_ms: dict[str, tuple[float, float, float, float]]
    order: tuple[str, ...]

    def fraction(self, label: str, component: int) -> float:
        parts = self.components_ms[label]
        total = sum(parts)
        return 0.0 if total <= 0 else parts[component] / total

    def sp_latency_fraction(self, label: str) -> float:
        return self.fraction(label, 1)

    def page_wait_fraction(self, label: str) -> float:
        return self.fraction(label, 2)


def run(app: str = APP) -> Fig04Result:
    order = ["p_8192"] + [f"sp_{s}" for s in common.SUBPAGE_SIZES]
    components: dict[str, tuple[float, float, float, float]] = {}

    def add(label: str, result) -> None:
        c = result.components
        other = c.cpu_overhead_ms + c.emulation_ms + c.tlb_miss_ms
        components[label] = (
            c.exec_ms, c.sp_latency_ms, c.page_wait_ms, other
        )

    add("p_8192", common.fullpage_run(app, MEMORY_FRACTION))
    for size in common.SUBPAGE_SIZES:
        add(
            f"sp_{size}",
            common.run_cached(
                app, MEMORY_FRACTION, scheme="eager", subpage_bytes=size
            ),
        )
    return Fig04Result(
        app=app, components_ms=components, order=tuple(order)
    )


def render(result: Fig04Result) -> str:
    rows = []
    for label in result.order:
        ex, sp, pw, other = result.components_ms[label]
        total = ex + sp + pw + other
        rows.append(
            [
                label,
                round(total, 1),
                percent(ex / total),
                percent(sp / total),
                percent(pw / total),
                percent(other / total),
            ]
        )
    return format_table(
        ["config", "total ms", "exec", "sp_latency", "page_wait", "other"],
        rows,
        title=(
            f"Figure 4: runtime components, {result.app} at 1/2-mem"
        ),
    )
