"""Registry of all experiment reproductions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigError
from repro.experiments.common import execution_scope
from repro.sim.parallel import ExecutionOptions
from repro.experiments import (
    scorecard,
    fig01_latency,
    fig02_timeline,
    fig03_memsizes,
    fig04_components,
    fig05_waiting,
    fig06_clustering,
    fig07_distances,
    fig08_pipelining,
    fig09_allapps,
    fig10_gdb_atom,
    fig11_multitenant,
    figAX_adaptive,
    figzoo_grid,
    tab01_palcode,
    tab02_latencies,
)


@dataclass(frozen=True, slots=True)
class Experiment:
    """One reproducible table or figure."""

    exp_id: str
    title: str
    run: Callable[[], Any]
    render: Callable[[Any], str]

    def report(self) -> str:
        """Run the experiment and render its report."""
        return self.render(self.run())

    def run_with(self, options: ExecutionOptions | None = None) -> Any:
        """Run under explicit execution options (workers/cache/progress).

        ``None`` keeps the ambient options (``REPRO_WORKERS`` /
        ``REPRO_CACHE_DIR`` or whatever the caller installed).
        """
        if options is None:
            return self.run()
        with execution_scope(options):
            return self.run()


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in (
        Experiment(
            "fig01",
            "Latency vs page size for disks and networks",
            fig01_latency.run,
            fig01_latency.render,
        ),
        Experiment(
            "tab01",
            "PALcode load/store emulation performance",
            tab01_palcode.run,
            tab01_palcode.render,
        ),
        Experiment(
            "tab02",
            "Page-fault latencies for eager fullpage fetch",
            tab02_latencies.run,
            tab02_latencies.render,
        ),
        Experiment(
            "fig02",
            "Remote page fetch timelines",
            fig02_timeline.run,
            fig02_timeline.render,
        ),
        Experiment(
            "fig03",
            "Subpage performance for 3 memory sizes (Modula-3)",
            fig03_memsizes.run,
            fig03_memsizes.render,
        ),
        Experiment(
            "fig04",
            "Runtime components at 1/2 memory (Modula-3)",
            fig04_components.run,
            fig04_components.render,
        ),
        Experiment(
            "fig05",
            "Sorted per-fault waiting times (Modula-3)",
            fig05_waiting.run,
            fig05_waiting.render,
        ),
        Experiment(
            "fig06",
            "Temporal clustering of page faults (Modula-3)",
            fig06_clustering.run,
            fig06_clustering.render,
        ),
        Experiment(
            "fig07",
            "Distance to next accessed subpage (Modula-3)",
            fig07_distances.run,
            fig07_distances.render,
        ),
        Experiment(
            "fig08",
            "Eager fullpage fetch vs subpage pipelining (Modula-3)",
            fig08_pipelining.run,
            fig08_pipelining.render,
        ),
        Experiment(
            "fig09",
            "Execution-time reduction for all applications",
            fig09_allapps.run,
            fig09_allapps.render,
        ),
        Experiment(
            "fig10",
            "Temporal clustering for gdb and Atom",
            fig10_gdb_atom.run,
            fig10_gdb_atom.render,
        ),
        Experiment(
            "figAX",
            "Adaptive fetch policy vs static pipelining (extension)",
            figAX_adaptive.run,
            figAX_adaptive.render,
        ),
        Experiment(
            "figMT",
            "Multi-tenant contention: tail latency and fairness "
            "(extension)",
            fig11_multitenant.run,
            fig11_multitenant.render,
        ),
        Experiment(
            "figZOO",
            "Workload-zoo grid: all apps x scheme x subpage (extension)",
            figzoo_grid.run,
            figzoo_grid.render,
        ),
        Experiment(
            "scorecard",
            "Paper-vs-measured scorecard across all headline claims",
            scorecard.run,
            scorecard.render,
        ),
    )
}


def get_experiment(exp_id: str) -> Experiment:
    try:
        return EXPERIMENTS[exp_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {known}"
        ) from None


def run_all(options: ExecutionOptions | None = None) -> dict[str, str]:
    """Run every experiment; returns rendered reports by id."""
    return {
        exp_id: experiment.render(experiment.run_with(options))
        for exp_id, experiment in EXPERIMENTS.items()
    }
