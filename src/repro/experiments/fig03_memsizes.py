"""Figure 3: subpage performance for three memory sizes (Modula-3).

Bars per memory configuration (full, 1/2, 1/4): disk_8192 (all faults
from disk), p_8192 (fullpage from global memory), then eager fullpage
fetch at subpage sizes 4096 down to 256.  Shape targets: global memory
beats disk ~1.7-2.2x; subpages improve on fullpage by ~8-40%; the benefit
grows with memory pressure; the best subpage size is 1K-2K.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import ascii_bar_chart, format_table, percent
from repro.experiments import common

APP = "modula3"


@dataclass(frozen=True, slots=True)
class Fig03Result:
    app: str
    #: (memory label, bar label) -> total runtime ms.
    totals_ms: dict[tuple[str, str], float]
    memory_labels: tuple[str, ...]
    bar_labels: tuple[str, ...]

    def improvement_over_fullpage(
        self, memory: str, subpage_bytes: int
    ) -> float:
        full = self.totals_ms[(memory, "p_8192")]
        sub = self.totals_ms[(memory, f"sp_{subpage_bytes}")]
        return 1.0 - sub / full

    def disk_speedup(self, memory: str) -> float:
        return (
            self.totals_ms[(memory, "disk_8192")]
            / self.totals_ms[(memory, "p_8192")]
        )

    def best_subpage(self, memory: str) -> int:
        sizes = [
            int(label.split("_")[1])
            for label in self.bar_labels
            if label.startswith("sp_")
        ]
        return min(
            sizes, key=lambda s: self.totals_ms[(memory, f"sp_{s}")]
        )


def grid_specs(app: str = APP) -> list[dict]:
    """Every cell of the Figure 3 grid as :func:`common.warm_runs` specs."""
    specs = []
    for fraction in common.MEMORY_FRACTIONS.values():
        specs.append({
            "app": app, "memory_fraction": fraction,
            "scheme": "fullpage", "subpage_bytes": 8192, "backing": "disk",
        })
        specs.append({
            "app": app, "memory_fraction": fraction,
            "scheme": "fullpage", "subpage_bytes": 8192,
        })
        for size in common.SUBPAGE_SIZES:
            specs.append({
                "app": app, "memory_fraction": fraction,
                "scheme": "eager", "subpage_bytes": size,
            })
    return specs


def run(app: str = APP) -> Fig03Result:
    memory_labels = tuple(common.MEMORY_FRACTIONS)
    bar_labels = ["disk_8192", "p_8192"] + [
        f"sp_{size}" for size in common.SUBPAGE_SIZES
    ]
    # Fan the whole grid out at once (parallel under --workers); the
    # loop below then reads every cell back from the run cache.
    common.warm_runs(grid_specs(app))
    totals: dict[tuple[str, str], float] = {}
    for memory, fraction in common.MEMORY_FRACTIONS.items():
        totals[(memory, "disk_8192")] = common.disk_run(
            app, fraction
        ).total_ms
        totals[(memory, "p_8192")] = common.fullpage_run(
            app, fraction
        ).total_ms
        for size in common.SUBPAGE_SIZES:
            totals[(memory, f"sp_{size}")] = common.run_cached(
                app, fraction, scheme="eager", subpage_bytes=size
            ).total_ms
    return Fig03Result(
        app=app,
        totals_ms=totals,
        memory_labels=memory_labels,
        bar_labels=tuple(bar_labels),
    )


def render(result: Fig03Result) -> str:
    out = [f"Figure 3: subpage performance, {result.app}"]
    for memory in result.memory_labels:
        values = [
            result.totals_ms[(memory, bar)] for bar in result.bar_labels
        ]
        out.append("")
        out.append(
            ascii_bar_chart(
                list(result.bar_labels),
                values,
                title=f"{memory} (total runtime, ms)",
                unit=" ms",
            )
        )
    rows = []
    for memory in result.memory_labels:
        rows.append(
            [
                memory,
                f"{result.disk_speedup(memory):.2f}x",
                percent(result.improvement_over_fullpage(memory, 1024)),
                result.best_subpage(memory),
            ]
        )
    out.append("")
    out.append(
        format_table(
            ["memory", "GMS vs disk", "sp_1024 vs p_8192", "best subpage"],
            rows,
        )
    )
    return "\n".join(out)
