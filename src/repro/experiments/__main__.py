"""Command-line experiment runner.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig03 fig09
    python -m repro.experiments --all
    python -m repro.experiments --workers 4 --progress fig03 fig09
    python -m repro.experiments --workers 4 --cache ~/.cache/repro fig03

Sweep-shaped experiments (Figures 3 and 9) fan their grid cells out over
``--workers`` processes (default ``$REPRO_WORKERS`` or serial) and reuse
the on-disk result cache named by ``--cache`` / ``$REPRO_CACHE_DIR``.
See ``docs/PARALLEL.md``.

``--trace-out FILE`` / ``--metrics-out FILE`` enable the observability
layer (``docs/OBSERVABILITY.md``): every simulated run records its fault
path, and the CLI writes a merged Chrome trace-event JSON (plus a
``.jsonl`` sibling) and/or a metrics JSON.  ``$REPRO_TRACE_DIR`` instead
writes per-experiment files into a directory.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.sim.parallel import (
    CellEvent,
    ExecutionOptions,
    ResultCache,
    WorkerPool,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Reproduce tables/figures from 'Reducing Network Latency "
            "Using Subpages in a Global Memory Environment' (ASPLOS '96)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. fig03 tab02); see --list",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's data series as CSV into DIR",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help=(
            "fan sweep cells out over N worker processes "
            "(default: $REPRO_WORKERS, else serial)"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "on-disk simulation result cache directory "
            "(default: $REPRO_CACHE_DIR; unset disables caching)"
        ),
    )
    parser.add_argument(
        "--store",
        metavar="FILE",
        default=None,
        help=(
            "sqlite result-store database serving (and durably "
            "recording) sweep cells; overrides --cache "
            "(default: $REPRO_STORE)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-sweep-cell progress/timing lines to stderr",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help=(
            "write a merged Chrome trace-event JSON (Perfetto-viewable) "
            "of all simulated runs to FILE, plus a .jsonl sibling"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write merged observability metrics (JSON) to FILE",
    )
    return parser


def make_progress_printer(stream=None):
    """A per-cell progress callback that prints timing lines."""
    if stream is None:
        stream = sys.stderr
    count = 0

    def emit(event: CellEvent) -> None:
        nonlocal count
        count += 1
        print(
            f"  [cell {count:3d}] {event.status:8s} "
            f"{event.elapsed_s * 1e3:8.1f} ms  {event.key}",
            file=stream,
        )

    return emit


def build_options(args: argparse.Namespace) -> ExecutionOptions:
    """Execution options from CLI flags layered over the environment.

    When workers are requested, a persistent :class:`WorkerPool` is
    installed so every experiment of the invocation shares one set of
    worker processes and one shared-memory trace arena; ``main`` closes
    it on the way out.
    """
    options = ExecutionOptions.from_env()
    if args.workers is not None:
        options.workers = max(1, args.workers)
    if args.cache is not None:
        options.cache = ResultCache(args.cache)
    if getattr(args, "store", None):
        from repro.store import SqliteResultStore

        options.cache = SqliteResultStore(args.store)
    if args.progress:
        options.progress = make_progress_printer()
    tokens = {part for part in options.observe.split(",") if part}
    if getattr(args, "trace_out", None):
        tokens.add("trace")
    if getattr(args, "metrics_out", None):
        tokens.add("metrics")
    options.observe = ",".join(sorted(tokens))
    if options.workers > 1:
        options.pool = WorkerPool(options.workers)
    return options


class _ObsCollector:
    """Gathers trace events and metrics across the experiments of one
    CLI invocation, and writes the requested output files."""

    def __init__(
        self, options: ExecutionOptions, args: argparse.Namespace
    ) -> None:
        from repro.obs import MetricsRegistry

        self.options = options
        self.args = args
        self._seen: set[int] = set()
        self.groups: list[tuple[str, list[dict]]] = []
        self.registry = MetricsRegistry()

    def collect(self, exp_id: str, result: object) -> None:
        """Pick up everything the just-finished experiment produced."""
        from repro.experiments.common import harvest_observed_runs
        from repro.obs import MetricsRegistry
        from repro.obs.export import experiment_observability

        groups, gauges = experiment_observability(exp_id, result)
        registry = MetricsRegistry()
        for name, value in gauges.items():
            registry.set_gauge(name, value)
        for run in harvest_observed_runs(self._seen):
            if run.trace_events:
                groups.append((
                    f"{exp_id}: {run.trace_name}/{run.scheme_label}",
                    run.trace_events,
                ))
            if run.metrics:
                registry.merge_dict(run.metrics)
        if self.options.trace_dir:
            self._write_dir(exp_id, groups, registry)
        self.groups.extend(groups)
        self.registry.merge(registry)

    def _write_dir(self, exp_id, groups, registry) -> None:
        from repro.obs import (
            combine_groups,
            write_chrome_trace,
            write_jsonl,
            write_metrics,
        )

        out = Path(self.options.trace_dir)
        out.mkdir(parents=True, exist_ok=True)
        if groups:
            events, names = combine_groups(groups)
            trace_path = out / f"{exp_id}.trace.json"
            write_chrome_trace(trace_path, events, names)
            write_jsonl(
                out / f"{exp_id}.jsonl", events,
                header={"experiment": exp_id},
            )
            print(f"wrote {trace_path}")
        if registry.counters or registry.gauges or registry.histograms:
            metrics_path = out / f"{exp_id}.metrics.json"
            write_metrics(metrics_path, registry)
            print(f"wrote {metrics_path}")

    def finish(self) -> None:
        """Write the merged ``--trace-out`` / ``--metrics-out`` files."""
        from repro.obs import (
            combine_groups,
            write_chrome_trace,
            write_jsonl,
            write_metrics,
        )

        if self.args.trace_out:
            events, names = combine_groups(self.groups)
            write_chrome_trace(self.args.trace_out, events, names)
            jsonl_path = Path(self.args.trace_out).with_suffix(".jsonl")
            write_jsonl(jsonl_path, events)
            print(
                f"wrote {self.args.trace_out} ({len(events)} events) "
                f"and {jsonl_path}"
            )
        if self.args.metrics_out:
            write_metrics(self.args.metrics_out, self.registry)
            print(f"wrote {self.args.metrics_out}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id, experiment in EXPERIMENTS.items():
            print(f"{exp_id:7s} {experiment.title}")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        build_parser().print_usage()
        print("error: name at least one experiment, or use --all/--list",
              file=sys.stderr)
        return 2
    options = build_options(args)
    collector = None
    if args.trace_out or args.metrics_out or options.trace_dir:
        collector = _ObsCollector(options, args)
    try:
        for exp_id in ids:
            experiment = get_experiment(exp_id)
            started = time.perf_counter()
            result = experiment.run_with(options)
            report = experiment.render(result)
            elapsed = time.perf_counter() - started
            if collector is not None:
                collector.collect(exp_id, result)
            print("=" * 72)
            print(f"{exp_id}: {experiment.title}  [{elapsed:.1f}s]")
            print("=" * 72)
            print(report)
            print()
            if args.csv:
                from pathlib import Path

                from repro.experiments.export import export_csv

                out_dir = Path(args.csv)
                out_dir.mkdir(parents=True, exist_ok=True)
                for name, text in export_csv(exp_id, result).items():
                    path = out_dir / name
                    path.write_text(text)
                    print(f"wrote {path}")
        if collector is not None:
            collector.finish()
    finally:
        if options.pool is not None:
            options.pool.close()
            options.pool = None
    if options.cache is not None and (options.cache.hits
                                      or options.cache.misses):
        print(
            f"result cache: {options.cache.hits} hits, "
            f"{options.cache.misses} misses ({options.cache.root})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
