"""Command-line experiment runner.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig03 fig09
    python -m repro.experiments --all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Reproduce tables/figures from 'Reducing Network Latency "
            "Using Subpages in a Global Memory Environment' (ASPLOS '96)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. fig03 tab02); see --list",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's data series as CSV into DIR",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id, experiment in EXPERIMENTS.items():
            print(f"{exp_id:7s} {experiment.title}")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        build_parser().print_usage()
        print("error: name at least one experiment, or use --all/--list",
              file=sys.stderr)
        return 2
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        started = time.perf_counter()
        result = experiment.run()
        report = experiment.render(result)
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print(f"{exp_id}: {experiment.title}  [{elapsed:.1f}s]")
        print("=" * 72)
        print(report)
        print()
        if args.csv:
            from pathlib import Path

            from repro.experiments.export import export_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            for name, text in export_csv(exp_id, result).items():
                path = out_dir / name
                path.write_text(text)
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
