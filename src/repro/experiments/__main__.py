"""Command-line experiment runner.

Usage::

    python -m repro.experiments --list
    python -m repro.experiments fig03 fig09
    python -m repro.experiments --all
    python -m repro.experiments --workers 4 --progress fig03 fig09
    python -m repro.experiments --workers 4 --cache ~/.cache/repro fig03

Sweep-shaped experiments (Figures 3 and 9) fan their grid cells out over
``--workers`` processes (default ``$REPRO_WORKERS`` or serial) and reuse
the on-disk result cache named by ``--cache`` / ``$REPRO_CACHE_DIR``.
See ``docs/PARALLEL.md``.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import EXPERIMENTS, get_experiment
from repro.sim.parallel import CellEvent, ExecutionOptions, ResultCache


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=(
            "Reproduce tables/figures from 'Reducing Network Latency "
            "Using Subpages in a Global Memory Environment' (ASPLOS '96)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment ids (e.g. fig03 tab02); see --list",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit"
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        help="also export each experiment's data series as CSV into DIR",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help=(
            "fan sweep cells out over N worker processes "
            "(default: $REPRO_WORKERS, else serial)"
        ),
    )
    parser.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help=(
            "on-disk simulation result cache directory "
            "(default: $REPRO_CACHE_DIR; unset disables caching)"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print per-sweep-cell progress/timing lines to stderr",
    )
    return parser


def make_progress_printer(stream=None):
    """A per-cell progress callback that prints timing lines."""
    if stream is None:
        stream = sys.stderr
    count = 0

    def emit(event: CellEvent) -> None:
        nonlocal count
        count += 1
        print(
            f"  [cell {count:3d}] {event.status:8s} "
            f"{event.elapsed_s * 1e3:8.1f} ms  {event.key}",
            file=stream,
        )

    return emit


def build_options(args: argparse.Namespace) -> ExecutionOptions:
    """Execution options from CLI flags layered over the environment."""
    options = ExecutionOptions.from_env()
    if args.workers is not None:
        options.workers = max(1, args.workers)
    if args.cache is not None:
        options.cache = ResultCache(args.cache)
    if args.progress:
        options.progress = make_progress_printer()
    return options


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list:
        for exp_id, experiment in EXPERIMENTS.items():
            print(f"{exp_id:7s} {experiment.title}")
        return 0
    ids = list(EXPERIMENTS) if args.all else args.experiments
    if not ids:
        build_parser().print_usage()
        print("error: name at least one experiment, or use --all/--list",
              file=sys.stderr)
        return 2
    options = build_options(args)
    for exp_id in ids:
        experiment = get_experiment(exp_id)
        started = time.perf_counter()
        result = experiment.run_with(options)
        report = experiment.render(result)
        elapsed = time.perf_counter() - started
        print("=" * 72)
        print(f"{exp_id}: {experiment.title}  [{elapsed:.1f}s]")
        print("=" * 72)
        print(report)
        print()
        if args.csv:
            from pathlib import Path

            from repro.experiments.export import export_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            for name, text in export_csv(exp_id, result).items():
                path = out_dir / name
                path.write_text(text)
                print(f"wrote {path}")
    if options.cache is not None and (options.cache.hits
                                      or options.cache.misses):
        print(
            f"result cache: {options.cache.hits} hits, "
            f"{options.cache.misses} misses ({options.cache.root})",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
