"""Table 2: page-fault latencies for eager fullpage fetch.

Two layers are checked against the paper:

* the **calibrated** constants (the published medians themselves) with
  the two derived columns (overlapped execution, sender pipelining)
  recomputed from the latency/overhead relationships;
* the **analytic** timeline model, least-squares fitted to the medians,
  which must land within a few percent — demonstrating that the
  five-resource pipeline explains the measurements (including the
  non-monotone rest-of-page column).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.net.calibration import (
    PAPER_FULLPAGE_MS,
    PAPER_TABLE2,
    fit_timeline_params,
    overlapped_execution_fraction,
    sender_pipelining_fraction,
)
from repro.net.timeline import simulate_fetch


@dataclass(frozen=True, slots=True)
class Tab02Row:
    subpage_bytes: int
    subpage_ms: float
    rest_ms: float
    overlapped_execution: float
    sender_pipelining: float
    model_subpage_ms: float
    model_rest_ms: float

    @property
    def model_subpage_error(self) -> float:
        return abs(self.model_subpage_ms - self.subpage_ms) / self.subpage_ms

    @property
    def model_rest_error(self) -> float:
        return abs(self.model_rest_ms - self.rest_ms) / self.rest_ms


@dataclass(frozen=True, slots=True)
class Tab02Result:
    rows: list[Tab02Row]
    fullpage_ms: float
    model_fullpage_ms: float

    @property
    def worst_model_error(self) -> float:
        errs = [r.model_subpage_error for r in self.rows]
        errs += [r.model_rest_error for r in self.rows]
        errs.append(
            abs(self.model_fullpage_ms - self.fullpage_ms)
            / self.fullpage_ms
        )
        return max(errs)

    def model_rest_ms(self, subpage_bytes: int) -> float:
        for row in self.rows:
            if row.subpage_bytes == subpage_bytes:
                return row.model_rest_ms
        raise KeyError(subpage_bytes)

    def reproduces_1k_vs_2k_surprise(self) -> bool:
        """Section 3.1.1's observation: the 1K fetch completes the whole
        page *later* than the 2K fetch (the first transfer is too small
        for optimal overlap), yet both beat the fullpage transfer."""
        return (
            self.model_rest_ms(1024) > self.model_rest_ms(2048)
            and self.model_rest_ms(2048) < self.model_fullpage_ms
        )

    def tiny_subpage_loses_sender_pipelining(self) -> bool:
        """At 256 bytes the split transfer completes no sooner than the
        monolithic fullpage one (Table 2: 1.49 vs 1.48 ms)."""
        return self.model_rest_ms(256) >= self.model_fullpage_ms - 0.01


def run() -> Tab02Result:
    params = fit_timeline_params()
    rows = []
    for paper_row in PAPER_TABLE2:
        timeline = simulate_fetch(
            params, 8192, paper_row.subpage_bytes, scheme="eager"
        )
        rows.append(
            Tab02Row(
                subpage_bytes=paper_row.subpage_bytes,
                subpage_ms=paper_row.subpage_latency_ms,
                rest_ms=paper_row.rest_of_page_ms,
                overlapped_execution=overlapped_execution_fraction(
                    paper_row
                ),
                sender_pipelining=sender_pipelining_fraction(paper_row),
                model_subpage_ms=timeline.resume_ms,
                model_rest_ms=timeline.completion_ms,
            )
        )
    fullpage = simulate_fetch(params, 8192, 8192, scheme="fullpage")
    return Tab02Result(
        rows=rows,
        fullpage_ms=PAPER_FULLPAGE_MS,
        model_fullpage_ms=fullpage.completion_ms,
    )


def render(result: Tab02Result) -> str:
    table = format_table(
        [
            "Size (B)",
            "Subpage (ms)",
            "Rest (ms)",
            "Ovl Exec",
            "Snd Pipe",
            "Model Sub",
            "Model Rest",
        ],
        [
            (
                r.subpage_bytes,
                r.subpage_ms,
                r.rest_ms,
                percent(r.overlapped_execution, 0),
                percent(r.sender_pipelining, 0),
                round(r.model_subpage_ms, 3),
                round(r.model_rest_ms, 3),
            )
            for r in result.rows
        ],
        title="Table 2: eager-fullpage-fetch latencies "
        "(paper medians + fitted timeline model)",
    )
    notes = [
        "",
        f"fullpage: paper {result.fullpage_ms:.2f} ms, "
        f"model {result.model_fullpage_ms:.3f} ms",
        f"worst model error: {percent(result.worst_model_error)}",
    ]
    return table + "\n".join(notes)
