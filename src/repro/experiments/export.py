"""CSV export of experiment data series.

Every experiment renders a human-readable report; this module exports the
underlying *data* as CSV so the figures can be re-plotted with any tool.
``export_csv(exp_id, result)`` returns ``{filename: csv_text}``;
the CLI's ``--csv DIR`` writes them to disk.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Sequence

from repro.errors import ConfigError


def _csv(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def _export_fig01(result) -> dict[str, str]:
    headers = ["size_bytes"] + list(result.series)
    rows = [
        [size] + [result.series[m][i] for m in result.series]
        for i, size in enumerate(result.sizes)
    ]
    return {"fig01_latency.csv": _csv(headers, rows)}


def _export_tab01(result) -> dict[str, str]:
    return {
        "tab01_palcode.csv": _csv(
            ["operation", "cycles", "time_ns"], result.rows
        )
    }


def _export_tab02(result) -> dict[str, str]:
    rows = [
        (
            r.subpage_bytes,
            r.subpage_ms,
            r.rest_ms,
            r.overlapped_execution,
            r.sender_pipelining,
            r.model_subpage_ms,
            r.model_rest_ms,
        )
        for r in result.rows
    ]
    return {
        "tab02_latencies.csv": _csv(
            [
                "subpage_bytes",
                "subpage_ms",
                "rest_ms",
                "overlapped_execution",
                "sender_pipelining",
                "model_subpage_ms",
                "model_rest_ms",
            ],
            rows,
        )
    }


def _export_fig02(result) -> dict[str, str]:
    rows = []
    for label, timeline in result.timelines.items():
        for span in timeline.spans:
            rows.append(
                (
                    label,
                    span.resource.value,
                    span.start_ms,
                    span.end_ms,
                    span.label,
                )
            )
    return {
        "fig02_timeline.csv": _csv(
            ["case", "resource", "start_ms", "end_ms", "label"], rows
        )
    }


def _export_fig03(result) -> dict[str, str]:
    rows = [
        (memory, bar, result.totals_ms[(memory, bar)])
        for memory in result.memory_labels
        for bar in result.bar_labels
    ]
    return {
        "fig03_memsizes.csv": _csv(
            ["memory", "config", "total_ms"], rows
        )
    }


def _export_fig04(result) -> dict[str, str]:
    rows = [
        (label, *result.components_ms[label])
        for label in result.order
    ]
    return {
        "fig04_components.csv": _csv(
            ["config", "exec_ms", "sp_latency_ms", "page_wait_ms",
             "other_ms"],
            rows,
        )
    }


def _export_fig05(result) -> dict[str, str]:
    rows = []
    for size, curve in sorted(result.curves.items(), reverse=True):
        for index, wait in curve.sample(points=200):
            rows.append((curve.label, index, wait))
    return {
        "fig05_waiting.csv": _csv(
            ["curve", "fault_rank", "waiting_ms"], rows
        )
    }


def _export_fig06(result) -> dict[str, str]:
    rows = [
        (t, c) for t, c in zip(*result.curve.cumulative())
    ]
    return {
        "fig06_clustering.csv": _csv(["time_ms", "cumulative_faults"],
                                     rows)
    }


def _export_fig07(result) -> dict[str, str]:
    rows = []
    for size, dist in sorted(result.distributions.items(), reverse=True):
        for distance, probability in dist.probabilities().items():
            rows.append((size, distance, probability))
    return {
        "fig07_distances.csv": _csv(
            ["subpage_bytes", "distance", "probability"], rows
        )
    }


def _export_fig08(result) -> dict[str, str]:
    rows = []
    for size in sorted(result.components, reverse=True):
        eager, piped = result.components[size]
        rows.append((size, "eager", *eager))
        rows.append((size, "pipelined", *piped))
    return {
        "fig08_pipelining.csv": _csv(
            ["subpage_bytes", "scheme", "exec_ms", "sp_latency_ms",
             "page_wait_ms"],
            rows,
        )
    }


def _export_fig09(result) -> dict[str, str]:
    rows = [
        (
            r.app,
            r.page_faults,
            r.eager_improvement,
            r.pipelined_improvement,
            r.io_overlap_share,
        )
        for r in result.rows
    ]
    return {
        "fig09_allapps.csv": _csv(
            ["app", "faults", "eager_improvement",
             "pipelined_improvement", "io_overlap_share"],
            rows,
        )
    }


def _export_fig10(result) -> dict[str, str]:
    rows = []
    for app, curve in result.curves.items():
        for t, c in zip(*curve.cumulative()):
            rows.append((app, t, c))
    return {
        "fig10_gdb_atom.csv": _csv(
            ["app", "time_ms", "cumulative_faults"], rows
        )
    }


def _export_figAX(result) -> dict[str, str]:
    rows = [
        (
            r.app,
            r.memory,
            r.static_ms,
            r.adaptive_ms,
            r.improvement,
            r.pred_hit_rate,
            r.coverage,
            r.wasted_prefetch_kb,
            r.lazy_fallbacks,
        )
        for r in result.rows
    ]
    return {
        "figAX_adaptive.csv": _csv(
            ["app", "memory", "static_ms", "adaptive_ms", "improvement",
             "pred_hit_rate", "coverage", "wasted_prefetch_kb",
             "lazy_fallbacks"],
            rows,
        )
    }


def _export_figMT(result) -> dict[str, str]:
    rows = [
        (
            r.tenants,
            r.scheme,
            r.subpage_bytes,
            r.tenant,
            r.faults,
            r.p50_ms,
            r.p99_ms,
            r.mean_ms,
            r.total_ms,
            r.slowdown,
            r.fairness,
            r.cross_queueing_ms,
            r.cross_preemption_ms,
        )
        for r in result.rows
    ]
    return {
        "figMT_multitenant.csv": _csv(
            ["tenants", "scheme", "subpage_bytes", "tenant", "faults",
             "p50_ms", "p99_ms", "mean_ms", "total_ms", "slowdown",
             "fairness", "cross_queueing_ms", "cross_preemption_ms"],
            rows,
        )
    }


def _export_figZOO(result) -> dict[str, str]:
    cell_rows = [
        (
            c.app,
            c.era,
            c.scheme,
            c.subpage_bytes,
            c.total_ms,
            c.improvement,
        )
        for c in result.cells
    ]
    summary_rows = [
        (
            s.app,
            s.era,
            s.page_faults,
            s.best_eager_subpage,
            s.best_pipelined_subpage,
            s.eager_1024,
            s.pipelined_1024,
        )
        for s in result.summaries
    ]
    return {
        "figZOO_grid.csv": _csv(
            ["app", "era", "scheme", "subpage_bytes", "total_ms",
             "improvement"],
            cell_rows,
        ),
        "figZOO_summary.csv": _csv(
            ["app", "era", "faults", "best_eager_subpage",
             "best_pipelined_subpage", "eager_1024", "pipelined_1024"],
            summary_rows,
        ),
    }


def _export_scorecard(result) -> dict[str, str]:
    rows = [
        (
            c.claim_id,
            c.statement,
            c.paper_value,
            c.measured,
            c.lo,
            c.hi,
            c.ok,
        )
        for c in result.claims
    ]
    return {
        "scorecard.csv": _csv(
            ["id", "claim", "paper", "measured", "band_lo", "band_hi",
             "ok"],
            rows,
        )
    }


_EXPORTERS: dict[str, Callable[[Any], dict[str, str]]] = {
    "scorecard": _export_scorecard,
    "fig01": _export_fig01,
    "tab01": _export_tab01,
    "tab02": _export_tab02,
    "fig02": _export_fig02,
    "fig03": _export_fig03,
    "fig04": _export_fig04,
    "fig05": _export_fig05,
    "fig06": _export_fig06,
    "fig07": _export_fig07,
    "fig08": _export_fig08,
    "fig09": _export_fig09,
    "fig10": _export_fig10,
    "figAX": _export_figAX,
    "figMT": _export_figMT,
    "figZOO": _export_figZOO,
}


def exportable_experiments() -> tuple[str, ...]:
    return tuple(sorted(_EXPORTERS))


def export_csv(exp_id: str, result: Any) -> dict[str, str]:
    """CSV files (name -> contents) for one experiment's result."""
    try:
        exporter = _EXPORTERS[exp_id]
    except KeyError:
        known = ", ".join(exportable_experiments())
        raise ConfigError(
            f"no CSV exporter for {exp_id!r}; known: {known}"
        ) from None
    return exporter(result)
