"""Figure 7: distribution of distances to the next accessed subpage.

After a fault on subpage *i*, the paper measures which subpage of the
same page is touched next, for 2K (a) and 1K (b) subpages.  Shape target:
the mass concentrates at distance +1 — the spatial locality that makes
+1/-1 pipelining effective.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.distances import (
    DistanceDistribution,
    distance_distribution,
)
from repro.analysis.report import ascii_bar_chart, percent
from repro.experiments import common

APP = "modula3"
MEMORY_FRACTION = 0.5
SIZES = (2048, 1024)


@dataclass(frozen=True, slots=True)
class Fig07Result:
    app: str
    distributions: dict[int, DistanceDistribution]

    def plus_one_probability(self, subpage_bytes: int) -> float:
        return self.distributions[subpage_bytes].probability(1)

    def most_likely_distance(self, subpage_bytes: int) -> int:
        return self.distributions[subpage_bytes].top(1)[0][0]


def run(app: str = APP) -> Fig07Result:
    distributions = {}
    for size in SIZES:
        result = common.run_cached(
            app, MEMORY_FRACTION, scheme="eager", subpage_bytes=size
        )
        distributions[size] = distance_distribution(result)
    return Fig07Result(app=app, distributions=distributions)


def render(result: Fig07Result) -> str:
    out = [
        f"Figure 7: distance to next accessed subpage on the same page "
        f"({result.app}, 1/2-mem)"
    ]
    for size in sorted(result.distributions, reverse=True):
        dist = result.distributions[size]
        probs = dist.probabilities()
        shown = {d: p for d, p in probs.items() if abs(d) <= 4}
        out.append("")
        out.append(
            ascii_bar_chart(
                [f"{d:+d}" for d in shown],
                [p * 100 for p in shown.values()],
                title=f"{size}-byte subpages (% of next accesses)",
                unit="%",
            )
        )
        out.append(
            f"  P(+1) = {percent(dist.probability(1))}, "
            f"P(within +/-1) = {percent(dist.mass_within(1))}"
        )
    return "\n".join(out)
