"""Figure 2: remote page fetch timelines (8K full, 2K and 1K eager).

Regenerates the component timeline — Req-CPU, Req-DMA, Wire, Srv-DMA,
Srv-CPU spans — for the three cases of the paper's figure, using the
timeline model fitted to Table 2.  The qualitative checks: the 2K case
resumes in roughly half the fullpage time *and* completes the whole page
sooner than fullpage (sender pipelining); the 1K case resumes earlier
still but completes slightly later than 2K (the first transfer is "too
small" for optimal overlap).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.calibration import fit_timeline_params
from repro.net.timeline import FetchTimeline, Resource, simulate_fetch

#: The paper's three cases plus (as an extension) the pipelined variant,
#: which shows the +1/-1 subpages arriving as separate early segments.
CASES: tuple[tuple[str, int, str, int], ...] = (
    ("fullpage 8K", 8192, "fullpage", 0),
    ("eager 2K", 2048, "eager", 0),
    ("eager 1K", 1024, "eager", 0),
    ("pipelined 1K (+1/-1)", 1024, "pipelined", 2),
)


@dataclass(frozen=True, slots=True)
class Fig02Result:
    timelines: dict[str, FetchTimeline]

    def resume_ms(self, label: str) -> float:
        return self.timelines[label].resume_ms

    def completion_ms(self, label: str) -> float:
        return self.timelines[label].completion_ms


def run() -> Fig02Result:
    params = fit_timeline_params()
    timelines = {
        label: simulate_fetch(
            params, 8192, size, scheme=scheme,
            pipeline_subpages=pipelined,
        )
        for label, size, scheme, pipelined in CASES
    }
    return Fig02Result(timelines=timelines)


def _ascii_timeline(timeline: FetchTimeline, width: int = 72) -> str:
    """Draw one timeline's spans as rows of '=' per resource."""
    end = max(s.end_ms for s in timeline.spans)
    rows = []
    for resource in Resource:
        cells = [" "] * width
        for span in timeline.spans:
            if span.resource is not resource:
                continue
            lo = int(span.start_ms / end * (width - 1))
            hi = max(lo + 1, int(span.end_ms / end * (width - 1)))
            for i in range(lo, min(hi, width)):
                cells[i] = "="
        rows.append(f"  {resource.value:8s} |{''.join(cells)}|")
    rows.append(
        f"  resume at {timeline.resume_ms:.2f} ms, page complete at "
        f"{timeline.completion_ms:.2f} ms"
    )
    return "\n".join(rows)


def render(result: Fig02Result) -> str:
    out = ["Figure 2: remote page fetch timelines (fitted model)"]
    for label, timeline in result.timelines.items():
        out.append("")
        out.append(f"{label}:")
        out.append(_ascii_timeline(timeline))
    out.append("")
    out.append(
        "checks: eager-2K resumes in "
        f"{result.resume_ms('eager 2K') / result.completion_ms('fullpage 8K'):.2f}"
        "x of fullpage latency; eager-1K completes at "
        f"{result.completion_ms('eager 1K'):.2f} ms vs eager-2K "
        f"{result.completion_ms('eager 2K'):.2f} ms "
        "(1K slightly later: transfer too small for optimal overlap)"
    )
    return "\n".join(out)
