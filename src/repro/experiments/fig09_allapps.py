"""Figure 9: execution-time reduction for all five applications.

At 1/2-mem with 1K subpages, every application must gain from eager
fullpage fetch (paper: 20-44%) and gain more with pipelining (30-54%);
most of the eager benefit must come from overlapped I/O (53-83% share),
with bursty-faulting applications (gdb) at the top and smooth ones
(Atom) near the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.overlap import attribute_overlap
from repro.analysis.report import format_table, percent
from repro.experiments import common
from repro.trace.synth.apps import classic_app_names

MEMORY_FRACTION = 0.5
SUBPAGE_BYTES = 1024


@dataclass(frozen=True, slots=True)
class AppRow:
    app: str
    eager_improvement: float
    pipelined_improvement: float
    io_overlap_share: float
    page_faults: int


@dataclass(frozen=True, slots=True)
class Fig09Result:
    rows: list[AppRow]

    def row(self, app: str) -> AppRow:
        for r in self.rows:
            if r.app == app:
                return r
        raise KeyError(app)

    @property
    def eager_range(self) -> tuple[float, float]:
        vals = [r.eager_improvement for r in self.rows]
        return min(vals), max(vals)

    @property
    def pipelined_range(self) -> tuple[float, float]:
        vals = [r.pipelined_improvement for r in self.rows]
        return min(vals), max(vals)


def grid_specs() -> list[dict]:
    """Every cell of the Figure 9 sweep as :func:`common.warm_runs` specs."""
    specs = []
    for app in classic_app_names():
        specs.append({
            "app": app, "memory_fraction": MEMORY_FRACTION,
            "scheme": "fullpage", "subpage_bytes": 8192,
        })
        specs.append({
            "app": app, "memory_fraction": MEMORY_FRACTION,
            "scheme": "eager", "subpage_bytes": SUBPAGE_BYTES,
        })
        specs.append({
            "app": app, "memory_fraction": MEMORY_FRACTION,
            "scheme": "pipelined", "subpage_bytes": SUBPAGE_BYTES,
        })
    return specs


def run() -> Fig09Result:
    rows = []
    # Fan the applications x schemes grid out in one parallel batch.
    common.warm_runs(grid_specs())
    for app in classic_app_names():
        full = common.fullpage_run(app, MEMORY_FRACTION)
        eager = common.run_cached(
            app,
            MEMORY_FRACTION,
            scheme="eager",
            subpage_bytes=SUBPAGE_BYTES,
        )
        piped = common.run_cached(
            app,
            MEMORY_FRACTION,
            scheme="pipelined",
            subpage_bytes=SUBPAGE_BYTES,
        )
        overlap = attribute_overlap(eager)
        rows.append(
            AppRow(
                app=app,
                eager_improvement=eager.improvement_vs(full),
                pipelined_improvement=piped.improvement_vs(full),
                io_overlap_share=overlap.io_share,
                page_faults=full.page_faults,
            )
        )
    return Fig09Result(rows=rows)


def render(result: Fig09Result) -> str:
    rows = [
        (
            r.app,
            r.page_faults,
            percent(r.eager_improvement),
            percent(r.pipelined_improvement),
            percent(r.io_overlap_share, 0),
        )
        for r in result.rows
    ]
    table = format_table(
        ["app", "faults", "eager cut", "pipelined cut", "I/O share"],
        rows,
        title=(
            "Figure 9: execution-time reduction, 1/2-mem, 1K subpages "
            "(paper: eager 20-44%, pipelined 30-54%, I/O share 53-83%)"
        ),
    )
    lo_e, hi_e = result.eager_range
    lo_p, hi_p = result.pipelined_range
    notes = [
        "",
        f"measured ranges: eager {percent(lo_e)}..{percent(hi_e)}, "
        f"pipelined {percent(lo_p)}..{percent(hi_p)}",
    ]
    return table + "\n".join(notes)
