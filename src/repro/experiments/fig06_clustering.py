"""Figure 6: temporal clustering of page faults (Modula-3).

Cumulative fault count over time; the near-vertical jumps are the
high-fault-rate periods (phase changes) during which I/O overlap happens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.clustering import (
    ClusteringCurve,
    burstiness_index,
    clustering_curve,
    fraction_in_bursts,
)
from repro.experiments import common

APP = "modula3"
MEMORY_FRACTION = 0.5


@dataclass(frozen=True, slots=True)
class Fig06Result:
    curve: ClusteringCurve
    burstiness: float
    burst_fraction: float


def run(app: str = APP) -> Fig06Result:
    result = common.run_cached(
        app, MEMORY_FRACTION, scheme="eager", subpage_bytes=1024
    )
    curve = clustering_curve(result, label=app)
    return Fig06Result(
        curve=curve,
        burstiness=burstiness_index(curve),
        burst_fraction=fraction_in_bursts(curve),
    )


def _ascii_curve(curve: ClusteringCurve, width: int = 64,
                 height: int = 12) -> str:
    samples = curve.sample(points=width)
    if not samples:
        return "(no faults)"
    duration = max(t for t, _ in samples) or 1.0
    peak = max(c for _, c in samples)
    grid = [[" "] * width for _ in range(height)]
    for t, c in samples:
        x = min(width - 1, int(t / duration * (width - 1)))
        y = min(height - 1, int(c / peak * (height - 1)))
        grid[height - 1 - y][x] = "*"
    rows = ["  |" + "".join(r) for r in grid]
    rows.append("  +" + "-" * width)
    rows.append(
        f"   0 .. {duration:.0f} ms (x), 0 .. {peak} faults (y)"
    )
    return "\n".join(rows)


def render(result: Fig06Result) -> str:
    out = [
        f"Figure 6: temporal clustering of page faults "
        f"({result.curve.label}, 1/2-mem)",
        _ascii_curve(result.curve),
        "",
        f"faults: {result.curve.num_faults}, burstiness index "
        f"(CoV of gaps): {result.burstiness:.2f}, fraction of faults in "
        f"bursts: {result.burst_fraction:.2f}",
    ]
    return "\n".join(out)
