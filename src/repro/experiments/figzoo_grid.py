"""figZOO: the workload-zoo grid — all nine apps x scheme x subpage.

The fig09 grid judges fetch policy on the paper's 1996 quintet; this
extension grid adds the four modern far-memory families
(:mod:`repro.trace.synth.modern`) and widens the matrix to three
subpage sizes per scheme, so every policy change is judged on modern
workloads too.

The grid documents two reproducible policy-ranking differences vs the
1996 apps (seed 0, 1/2-mem):

* **mltrain prefers coarse fetch.**  Its minibatch samples are long
  contiguous reads, so the eager benefit is *monotone decreasing* in
  subpage fineness — best at 4096 — while every 1996 app peaks at
  1024 (fine-grain actively hurts mltrain: eager@256 keeps only a few
  percent of the win).
* **Scattered small-object serving pushes the pipelining optimum below
  1K.**  kvserve, graph, and websess have best pipelined subpage 256
  (P(+1) =~ 25%, so predicted-order delivery only helps once subpages
  are cheap), while every 1996 app's best pipelined subpage stays at
  the paper's 1K sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table, percent
from repro.experiments import common
from repro.trace.synth.apps import (
    APP_MODELS,
    app_names,
    classic_app_names,
)

MEMORY_FRACTION = 0.5

#: Subpage sizes in the grid (coarse / paper sweet spot / fine).
GRID_SUBPAGES: tuple[int, ...] = (4096, 1024, 256)

SCHEMES: tuple[str, ...] = ("eager", "pipelined")


@dataclass(frozen=True, slots=True)
class ZooCell:
    """One grid cell: an app under one scheme/subpage configuration."""

    app: str
    era: str
    scheme: str
    subpage_bytes: int
    total_ms: float
    improvement: float


@dataclass(frozen=True, slots=True)
class ZooSummary:
    """Per-app digest of the grid."""

    app: str
    era: str
    page_faults: int
    best_eager_subpage: int
    best_pipelined_subpage: int
    eager_1024: float
    pipelined_1024: float


@dataclass(frozen=True, slots=True)
class FigZooResult:
    """The full grid plus per-app digests."""

    cells: list[ZooCell]
    summaries: list[ZooSummary]

    def summary(self, app: str) -> ZooSummary:
        for s in self.summaries:
            if s.app == app:
                return s
        raise KeyError(app)

    def cell(self, app: str, scheme: str, subpage_bytes: int) -> ZooCell:
        for c in self.cells:
            if (
                c.app == app
                and c.scheme == scheme
                and c.subpage_bytes == subpage_bytes
            ):
                return c
        raise KeyError((app, scheme, subpage_bytes))


def grid_specs() -> list[dict]:
    """Every cell of the zoo grid as :func:`common.warm_runs` specs."""
    specs = []
    for app in app_names():
        specs.append({
            "app": app, "memory_fraction": MEMORY_FRACTION,
            "scheme": "fullpage", "subpage_bytes": 8192,
        })
        for scheme in SCHEMES:
            for subpage in GRID_SUBPAGES:
                specs.append({
                    "app": app, "memory_fraction": MEMORY_FRACTION,
                    "scheme": scheme, "subpage_bytes": subpage,
                })
    return specs


def run() -> FigZooResult:
    """Warm the grid in one batch, then digest it per app."""
    common.warm_runs(grid_specs())
    cells: list[ZooCell] = []
    summaries: list[ZooSummary] = []
    for app in app_names():
        era = APP_MODELS[app].era
        full = common.fullpage_run(app, MEMORY_FRACTION)
        best: dict[str, tuple[int, float]] = {}
        at_1024: dict[str, float] = {}
        for scheme in SCHEMES:
            for subpage in GRID_SUBPAGES:
                result = common.run_cached(
                    app,
                    MEMORY_FRACTION,
                    scheme=scheme,
                    subpage_bytes=subpage,
                )
                improvement = result.improvement_vs(full)
                cells.append(
                    ZooCell(
                        app=app,
                        era=era,
                        scheme=scheme,
                        subpage_bytes=subpage,
                        total_ms=result.total_ms,
                        improvement=improvement,
                    )
                )
                if scheme not in best or improvement > best[scheme][1]:
                    best[scheme] = (subpage, improvement)
                if subpage == 1024:
                    at_1024[scheme] = improvement
        summaries.append(
            ZooSummary(
                app=app,
                era=era,
                page_faults=full.page_faults,
                best_eager_subpage=best["eager"][0],
                best_pipelined_subpage=best["pipelined"][0],
                eager_1024=at_1024["eager"],
                pipelined_1024=at_1024["pipelined"],
            )
        )
    return FigZooResult(cells=cells, summaries=summaries)


def render(result: FigZooResult) -> str:
    """The summary table plus the ranking-flip notes, computed from data."""
    rows = [
        (
            s.app,
            s.era,
            s.page_faults,
            percent(s.eager_1024),
            percent(s.pipelined_1024),
            s.best_eager_subpage,
            s.best_pipelined_subpage,
        )
        for s in result.summaries
    ]
    table = format_table(
        ["app", "era", "faults", "eager@1K", "piped@1K",
         "best ea", "best pi"],
        rows,
        title=(
            "figZOO: workload-zoo grid, 1/2-mem "
            "(improvement over 8K fullpage; best subpage per scheme)"
        ),
    )
    classics = set(classic_app_names())
    classic_best_pi = sorted(
        {s.best_pipelined_subpage
         for s in result.summaries if s.app in classics}
    )
    fine_moderns = [
        s.app
        for s in result.summaries
        if s.era == "modern" and s.best_pipelined_subpage < 1024
    ]
    coarse_moderns = [
        s.app
        for s in result.summaries
        if s.era == "modern" and s.best_eager_subpage > 1024
    ]
    notes = [
        "",
        f"classic best pipelined subpage(s): {classic_best_pi}",
        f"modern families preferring finer pipelined fetch (<1K): "
        f"{fine_moderns or 'none'}",
        f"modern families preferring coarser eager fetch (>1K): "
        f"{coarse_moderns or 'none'}",
    ]
    return table + "\n".join(notes)
