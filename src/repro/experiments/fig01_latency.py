"""Figure 1: latency vs page size for disks and networks.

The paper plots transfer latency against page size for a disk subsystem,
a heavily-loaded 10 Mb/s Ethernet, a lightly-loaded Ethernet, and an ATM
network, making four points: disk has high zero-length latency; networks
have low fixed overhead so wire time dominates; even ATM latency falls
substantially with smaller packets; and for very small transfers even
Ethernet beats disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.report import format_table
from repro.disk.model import DiskAccessKind
from repro.disk.presets import paper_disk
from repro.net.params import (
    AN2_ATM,
    ETHERNET_IDLE,
    ETHERNET_LOADED,
    transfer_latency_ms,
)

#: Transfer sizes plotted (bytes); 0 exposes the fixed overhead.
SIZES: tuple[int, ...] = (0, 256, 512, 1024, 2048, 4096, 8192, 16384)


@dataclass(frozen=True, slots=True)
class Fig01Result:
    sizes: tuple[int, ...]
    series: dict[str, list[float]]  # medium -> latency per size (ms)

    def crossover_vs_disk(self, medium: str) -> int | None:
        """Largest plotted size at which ``medium`` still beats disk."""
        disk = self.series["disk"]
        curve = self.series[medium]
        best = None
        for size, net, dsk in zip(self.sizes, curve, disk):
            if net < dsk:
                best = size
        return best


def run() -> Fig01Result:
    disk = paper_disk()
    series: dict[str, list[float]] = {
        "disk": [
            disk.access_latency_ms(DiskAccessKind.RANDOM, s) for s in SIZES
        ],
        "ethernet-loaded": [
            transfer_latency_ms(ETHERNET_LOADED, s) for s in SIZES
        ],
        "ethernet-idle": [
            transfer_latency_ms(ETHERNET_IDLE, s) for s in SIZES
        ],
        "atm": [transfer_latency_ms(AN2_ATM, s) for s in SIZES],
    }
    return Fig01Result(sizes=SIZES, series=series)


def render(result: Fig01Result) -> str:
    headers = ["size (B)"] + list(result.series)
    rows = []
    for i, size in enumerate(result.sizes):
        rows.append(
            [size] + [result.series[m][i] for m in result.series]
        )
    table = format_table(
        headers,
        rows,
        title="Figure 1: transfer latency (ms) vs page size",
        float_digits=3,
    )
    notes = [
        "",
        f"disk latency at zero length: "
        f"{result.series['disk'][0]:.1f} ms (high fixed cost)",
        f"ATM latency at zero length: "
        f"{result.series['atm'][0]:.2f} ms (low fixed cost)",
    ]
    return table + "\n".join(notes)
