"""Memory-reference events and address arithmetic.

A trace is conceptually a sequence of :class:`MemoryRef` records.  In
practice the library stores traces as numpy arrays (see
:mod:`repro.trace.compress`); ``MemoryRef`` exists for tests, small
hand-built traces, and readable APIs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import TraceError
from repro.units import FULL_PAGE_BYTES, MIN_SUBPAGE_BYTES, is_power_of_two


class AccessType(enum.IntEnum):
    """Kind of memory access; encoded as one bit in compressed traces."""

    READ = 0
    WRITE = 1


@dataclass(frozen=True, slots=True)
class MemoryRef:
    """One memory reference: a virtual address plus an access type."""

    address: int
    access: AccessType = AccessType.READ

    def __post_init__(self) -> None:
        if self.address < 0:
            raise TraceError(f"negative address {self.address:#x}")

    @property
    def is_write(self) -> bool:
        return self.access is AccessType.WRITE

    def page(self, page_bytes: int = FULL_PAGE_BYTES) -> int:
        return page_of(self.address, page_bytes)

    def block(self, block_bytes: int = MIN_SUBPAGE_BYTES) -> int:
        return block_of(self.address, block_bytes)


def page_of(address: int, page_bytes: int = FULL_PAGE_BYTES) -> int:
    """Virtual page number containing ``address``."""
    _check_granularity(page_bytes, "page size")
    return address // page_bytes


def block_of(
    address: int,
    block_bytes: int = MIN_SUBPAGE_BYTES,
    page_bytes: int = FULL_PAGE_BYTES,
) -> int:
    """Index of the block containing ``address`` *within its page*.

    Blocks are the finest protection granularity (256 bytes on the
    prototype, one valid bit each); subpage indices at any coarser
    power-of-two size are derived from block indices by integer division.
    """
    _check_granularity(block_bytes, "block size")
    _check_granularity(page_bytes, "page size")
    if block_bytes > page_bytes:
        raise TraceError(
            f"block size {block_bytes} exceeds page size {page_bytes}"
        )
    return (address % page_bytes) // block_bytes


def subpage_of_block(
    block: int, subpage_bytes: int, block_bytes: int = MIN_SUBPAGE_BYTES
) -> int:
    """Subpage index (within its page) of block index ``block``."""
    _check_granularity(subpage_bytes, "subpage size")
    if subpage_bytes < block_bytes:
        raise TraceError(
            f"subpage size {subpage_bytes} below block granularity "
            f"{block_bytes}"
        )
    return block // (subpage_bytes // block_bytes)


def refs_from_addresses(
    addresses: Iterable[int], writes: Iterable[bool] | None = None
) -> Iterator[MemoryRef]:
    """Build :class:`MemoryRef` records from parallel address/write streams."""
    if writes is None:
        for address in addresses:
            yield MemoryRef(int(address))
        return
    for address, write in zip(addresses, writes, strict=True):
        yield MemoryRef(
            int(address), AccessType.WRITE if write else AccessType.READ
        )


def _check_granularity(size: int, what: str) -> None:
    if not is_power_of_two(size):
        raise TraceError(f"{what} must be a positive power of two, got {size}")
