"""Trace persistence: save and load :class:`RunTrace` objects.

Traces are stored as ``.npz`` archives with a small JSON metadata header.
The format is versioned so future layouts can coexist.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import TraceFormatError
from repro.trace.compress import RunTrace

FORMAT_VERSION = 1
_REQUIRED_KEYS = ("pages", "blocks", "counts", "writes", "meta")
_TEXT_HEADER = "# repro-trace v1"


def save_trace(trace: RunTrace, path: str | Path) -> Path:
    """Write ``trace`` to ``path`` (``.npz``); returns the resolved path."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    meta = {
        "version": FORMAT_VERSION,
        "page_bytes": trace.page_bytes,
        "block_bytes": trace.block_bytes,
        "dilation": trace.dilation,
        "name": trace.name,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        pages=trace.pages,
        blocks=trace.blocks,
        counts=trace.counts,
        writes=trace.writes,
        meta=np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8),
    )
    return path


def load_trace(path: str | Path) -> RunTrace:
    """Load a trace previously written by :func:`save_trace`."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"no trace file at {path}")
    try:
        with np.load(path) as archive:
            missing = [k for k in _REQUIRED_KEYS if k not in archive]
            if missing:
                raise TraceFormatError(
                    f"{path} is missing arrays: {', '.join(missing)}"
                )
            meta = json.loads(bytes(archive["meta"]).decode("utf-8"))
            if meta.get("version") != FORMAT_VERSION:
                raise TraceFormatError(
                    f"{path} has format version {meta.get('version')}, "
                    f"expected {FORMAT_VERSION}"
                )
            return RunTrace(
                pages=archive["pages"],
                blocks=archive["blocks"],
                counts=archive["counts"],
                writes=archive["writes"],
                page_bytes=int(meta["page_bytes"]),
                block_bytes=int(meta["block_bytes"]),
                dilation=float(meta["dilation"]),
                name=str(meta["name"]),
            )
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise TraceFormatError(f"could not decode trace {path}: {exc}") from exc


def save_trace_text(trace: RunTrace, path: str | Path) -> Path:
    """Write ``trace`` as a human-readable TSV file.

    Format: a header line, a JSON metadata line, then one
    ``page<TAB>block<TAB>count<TAB>write`` row per run.  Intended for
    interop and debugging; use :func:`save_trace` for anything large.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    meta = {
        "page_bytes": trace.page_bytes,
        "block_bytes": trace.block_bytes,
        "dilation": trace.dilation,
        "name": trace.name,
    }
    with path.open("w", encoding="utf-8") as fh:
        fh.write(_TEXT_HEADER + "\n")
        fh.write(json.dumps(meta) + "\n")
        fh.write("page\tblock\tcount\twrite\n")
        for page, block, count, write in zip(
            trace.pages, trace.blocks, trace.counts, trace.writes
        ):
            fh.write(f"{int(page)}\t{int(block)}\t{int(count)}\t"
                     f"{int(bool(write))}\n")
    return path


def load_trace_text(path: str | Path) -> RunTrace:
    """Load a trace written by :func:`save_trace_text`."""
    path = Path(path)
    if not path.exists():
        raise TraceFormatError(f"no trace file at {path}")
    try:
        with path.open("r", encoding="utf-8") as fh:
            header = fh.readline().rstrip("\n")
            if header != _TEXT_HEADER:
                raise TraceFormatError(
                    f"{path}: bad header {header!r}"
                )
            meta = json.loads(fh.readline())
            column_names = fh.readline().rstrip("\n").split("\t")
            if column_names != ["page", "block", "count", "write"]:
                raise TraceFormatError(f"{path}: bad column header")
            rows = [line.split("\t") for line in fh if line.strip()]
    except (OSError, json.JSONDecodeError) as exc:
        raise TraceFormatError(
            f"could not decode trace {path}: {exc}"
        ) from exc
    try:
        pages = np.array([int(r[0]) for r in rows], dtype=np.int64)
        blocks = np.array([int(r[1]) for r in rows], dtype=np.int16)
        counts = np.array([int(r[2]) for r in rows], dtype=np.int64)
        writes = np.array([bool(int(r[3])) for r in rows], dtype=bool)
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"{path}: malformed row: {exc}") from exc
    return RunTrace(
        pages=pages,
        blocks=blocks,
        counts=counts,
        writes=writes,
        page_bytes=int(meta["page_bytes"]),
        block_bytes=int(meta["block_bytes"]),
        dilation=float(meta["dilation"]),
        name=str(meta["name"]),
    )
