"""Memory-reference traces: representation, compression, synthesis.

The paper drives its simulator with Atom-generated memory-reference traces
of five applications (Section 3.2).  Those traces (and the binaries that
produced them) are not available, so this package provides:

* :mod:`repro.trace.events` — the reference record and address arithmetic;
* :mod:`repro.trace.compress` — run-length compression of reference streams
  at the finest (256-byte block) protection granularity, which is what the
  simulator consumes;
* :mod:`repro.trace.encode` — a trace file format (``.npz``-based);
* :mod:`repro.trace.synth` — the phased synthetic workload generator and
  the five calibrated application models;
* :mod:`repro.trace.cachesim` / :mod:`repro.trace.calibrate` — the cache
  simulator used to calibrate the average time per trace event (the paper's
  12 ns figure).
"""

from repro.trace.compress import RunTrace, compress_references
from repro.trace.events import AccessType, MemoryRef, block_of, page_of
from repro.trace.encode import (
    load_trace,
    load_trace_text,
    save_trace,
    save_trace_text,
)
from repro.trace.synth import SyntheticTrace, app_names, build_app_trace

__all__ = [
    "AccessType",
    "MemoryRef",
    "RunTrace",
    "SyntheticTrace",
    "app_names",
    "block_of",
    "build_app_trace",
    "compress_references",
    "load_trace",
    "load_trace_text",
    "page_of",
    "save_trace",
    "save_trace_text",
]
