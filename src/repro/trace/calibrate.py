"""Event-time calibration: from cache behaviour to ns per reference.

The paper's simulator uses memory accesses as clock events and calibrates
the average event cost by running traced applications through a cache
simulator (Section 3.2): "we calculated an average time per simulation
event to be about 12 nanoseconds, i.e., 83,000 events correspond to one
millisecond of execution time."

:func:`average_event_ns` reproduces that pipeline using the Table 1
memory-hierarchy timings (L1 hit 11 ns, L2 hit 30 ns, L2 miss 315 ns) plus
a per-instruction pipeline cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.trace.cachesim import CacheStats, TwoLevelCache
from repro.units import DEFAULT_EVENT_NS


@dataclass(frozen=True, slots=True)
class HierarchyTimings:
    """Per-level access costs in nanoseconds (paper Table 1)."""

    l1_hit_ns: float = 11.0
    l2_hit_ns: float = 30.0
    memory_ns: float = 315.0
    #: Non-memory pipeline work amortized per reference.  The Alpha's
    #: dual issue hides nearly all of it behind the L1 access, which is
    #: why the paper's calibrated 12 ns/event sits just above the 11 ns
    #: L1 hit time.
    pipeline_ns: float = 0.5


PAPER_TIMINGS = HierarchyTimings()


def event_ns_from_stats(
    stats: CacheStats, timings: HierarchyTimings = PAPER_TIMINGS
) -> float:
    """Average ns per reference implied by hit/miss counts."""
    if stats.accesses == 0:
        return timings.pipeline_ns + timings.l1_hit_ns
    weighted = (
        stats.l1_hits * timings.l1_hit_ns
        + stats.l2_hits * timings.l2_hit_ns
        + stats.l2_misses * timings.memory_ns
    )
    return timings.pipeline_ns + weighted / stats.accesses


def average_event_ns(
    addresses: np.ndarray,
    *,
    timings: HierarchyTimings = PAPER_TIMINGS,
    cache: TwoLevelCache | None = None,
    max_samples: int = 200_000,
) -> float:
    """Calibrate ns/event for an address stream via cache simulation.

    Long streams are strided down to ``max_samples`` simulated references;
    the miss-rate estimate (and hence the average) is insensitive to this
    for the workload sizes used here.
    """
    addresses = np.asarray(addresses)
    cache = cache if cache is not None else TwoLevelCache()
    stride = max(1, addresses.size // max_samples)
    stats = cache.run(addresses, sample_stride=stride)
    return event_ns_from_stats(stats, timings)


def paper_event_ns() -> float:
    """The paper's calibrated constant (12 ns per event)."""
    return DEFAULT_EVENT_NS
