"""A two-level set-associative cache simulator.

The paper calibrates its event clock by running traces through a cache
simulator and computing the average time per memory access (~12 ns on the
DEC Alpha 250; Section 3.2).  This module provides that substrate: an
L1/L2 hierarchy with LRU replacement, driven by an address array, producing
hit/miss counts that :mod:`repro.trace.calibrate` turns into an average
event time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.units import is_power_of_two


@dataclass(frozen=True, slots=True)
class CacheConfig:
    """Geometry of one cache level."""

    size_bytes: int
    line_bytes: int = 32
    associativity: int = 2

    def __post_init__(self) -> None:
        if not is_power_of_two(self.size_bytes):
            raise ConfigError("cache size must be a power of two")
        if not is_power_of_two(self.line_bytes):
            raise ConfigError("line size must be a power of two")
        if self.associativity < 1:
            raise ConfigError("associativity must be >= 1")
        if self.num_sets < 1:
            raise ConfigError("cache has no sets; check geometry")

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


#: Approximate DEC Alpha 250 (21064A) cache geometry: 16KB direct-mapped L1
#: data cache, 2MB direct-mapped board-level L2.
ALPHA250_L1 = CacheConfig(size_bytes=16 * 1024, line_bytes=32,
                          associativity=1)
ALPHA250_L2 = CacheConfig(size_bytes=2 * 1024 * 1024, line_bytes=32,
                          associativity=1)


@dataclass(slots=True)
class CacheStats:
    """Hit/miss counts for a two-level hierarchy."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    l2_misses: int = 0

    @property
    def l1_miss_rate(self) -> float:
        return 0.0 if not self.accesses else 1 - self.l1_hits / self.accesses

    @property
    def l2_local_miss_rate(self) -> float:
        """L2 misses as a fraction of L2 accesses (i.e. of L1 misses)."""
        l2_accesses = self.l2_hits + self.l2_misses
        return 0.0 if not l2_accesses else self.l2_misses / l2_accesses

    @property
    def global_miss_rate(self) -> float:
        return 0.0 if not self.accesses else self.l2_misses / self.accesses


class _Level:
    """One set-associative LRU cache level."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._tags = np.full(
            (config.num_sets, config.associativity), -1, dtype=np.int64
        )
        # Higher stamp = more recently used.
        self._stamps = np.zeros(
            (config.num_sets, config.associativity), dtype=np.int64
        )
        self._clock = 0

    def access(self, line: int) -> bool:
        """Touch a line address; return True on hit (fills on miss)."""
        self._clock += 1
        set_idx = line % self.config.num_sets
        tags = self._tags[set_idx]
        hit = np.flatnonzero(tags == line)
        if hit.size:
            self._stamps[set_idx, hit[0]] = self._clock
            return True
        victim = int(np.argmin(self._stamps[set_idx]))
        tags[victim] = line
        self._stamps[set_idx, victim] = self._clock
        return False


class TwoLevelCache:
    """An inclusive two-level cache hierarchy with LRU at each level."""

    def __init__(
        self,
        l1: CacheConfig = ALPHA250_L1,
        l2: CacheConfig = ALPHA250_L2,
    ) -> None:
        if l2.size_bytes < l1.size_bytes:
            raise ConfigError("L2 must be at least as large as L1")
        self._l1 = _Level(l1)
        self._l2 = _Level(l2)
        self.stats = CacheStats()

    def access(self, address: int) -> str:
        """Access one address; returns 'l1', 'l2', or 'mem'."""
        self.stats.accesses += 1
        l1_line = address // self._l1.config.line_bytes
        if self._l1.access(l1_line):
            self.stats.l1_hits += 1
            return "l1"
        l2_line = address // self._l2.config.line_bytes
        if self._l2.access(l2_line):
            self.stats.l2_hits += 1
            return "l2"
        self.stats.l2_misses += 1
        return "mem"

    def run(
        self, addresses: np.ndarray, sample_stride: int = 1
    ) -> CacheStats:
        """Drive the hierarchy with an address array.

        ``sample_stride > 1`` simulates every Nth reference, which is
        accurate enough for miss-*rate* estimation and much faster.
        """
        if sample_stride < 1:
            raise ConfigError("sample_stride must be >= 1")
        l1_lines = np.asarray(addresses, dtype=np.int64)
        l1_lines = l1_lines[::sample_stride]
        for address in l1_lines:
            self.access(int(address))
        return self.stats
