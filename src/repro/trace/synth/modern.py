"""Modern far-memory workload families (the "zoo").

Four synthetic application classes beyond the paper's 1996 quintet —
the workloads Leap ("Effectively Prefetching Remote Memory with Leap")
and "A Tale of Two Paths" evaluate far-memory systems on:

* **kvserve** — Zipfian key-value serving: a memcached-style value
  heap with skewed key popularity, hash-index probes, and an append
  log.  Small-object access with a strong hot set.
* **graph** — graph analytics (BFS/pagerank frontiers): sequential
  edge-array scans per frontier, but *scattered* visits into the
  vertex-property region — neighbor order is unrelated to address
  order, so the next subpage touched after a fault is effectively
  random.  This defeats the ±1-order pipelining prediction that the
  1996 applications reward (the documented policy-ranking flip in the
  ``figZOO`` grid).
* **mltrain** — ML-training working sets: epoch passes reading
  shuffled minibatches of *contiguous* samples from a large dataset
  region, a hot read/write parameter region, and streamed activation
  writes.  Strongly sequential inside each sample.
* **websess** — web-session traffic: bursty request spikes over
  Zipf-popular session objects and a hot template/code set, with
  session churn writing fresh session state during each spike —
  gdb-style bursts at serving rates.

Each family is registered in :data:`repro.trace.synth.apps.APP_MODELS`
with ``era="modern"``; the classic paper figures keep iterating
:func:`classic_app_names` while the ``figZOO`` grid judges every
policy on all nine.  Locality/clustering parameters are tuned with
``tools/tune_workloads.py`` (see ``docs/WORKLOADS.md``).
"""

from __future__ import annotations

from repro.trace.synth.patterns import (
    HotCold,
    PointerChase,
    RandomUniform,
    Sequential,
    ZipfPages,
)
from repro.trace.synth.phases import Phase, PhaseComponent, Workload
from repro.trace.synth.regions import Region, RegionAllocator

__all__ = ["build_graph", "build_kvserve", "build_mltrain", "build_websess"]


def _comp(
    region: Region, pattern, weight: float = 1.0, write_fraction: float = 0.0
) -> PhaseComponent:
    return PhaseComponent(
        region=region,
        pattern=pattern,
        weight=weight,
        write_fraction=write_fraction,
    )


# ---------------------------------------------------------------------------
# kvserve: Zipfian key-value serving.
# ---------------------------------------------------------------------------


def build_kvserve(scale: float) -> Workload:
    """Zipfian key-value serving: hot value heap, index probes, append log."""
    alloc = RegionAllocator()
    values = alloc.allocate_pages("value_heap", 760)
    index = alloc.allocate_pages("hash_index", 96)
    log = alloc.allocate_pages("append_log", 48)
    code = alloc.allocate_pages("server_code", 24)

    wl = Workload(name="kvserve", dilation=8.0)
    epochs = 8
    per_epoch = int(125_000 * scale)
    code_hot = HotCold(hot_fraction=0.3, hot_prob=0.95)
    for i in range(epochs):
        # Each serving epoch re-draws the Zipf rank permutation (a new
        # slice of the keyspace trends hot), producing the working-set
        # shifts real caches see; within an epoch the hot keys absorb
        # most traffic.
        wl.add(
            Phase(
                name=f"serve{i}",
                refs=per_epoch,
                components=(
                    _comp(
                        values,
                        ZipfPages(alpha=1.05, run_words=32),
                        weight=4.0,
                        write_fraction=0.1,
                    ),
                    _comp(index, RandomUniform(run_words=4), weight=1.2),
                    _comp(
                        log,
                        Sequential(stride=8, start_fraction=i / epochs),
                        weight=0.5,
                        write_fraction=0.95,
                    ),
                    _comp(code, code_hot, weight=2.0),
                ),
                interleave_chunk=48,
            )
        )
    return wl


# ---------------------------------------------------------------------------
# graph: BFS/pagerank frontier processing.
# ---------------------------------------------------------------------------


def build_graph(scale: float) -> Workload:
    """Frontier graph analytics: degree-skewed adjacency scans, scattered vertex visits."""
    alloc = RegionAllocator()
    adjacency = alloc.allocate_pages("adjacency_csr", 460)
    vertices = alloc.allocate_pages("vertex_props", 140)
    frontier = alloc.allocate_pages("frontier_queues", 24)
    code = alloc.allocate_pages("graph_code", 16)

    wl = Workload(name="graph", dilation=8.0)
    rounds = 10
    per_round = int(95_000 * scale)
    code_hot = HotCold(hot_fraction=0.4, hot_prob=0.9)
    for i in range(rounds):
        # One frontier expansion: neighbor lists are short scattered
        # runs in the adjacency region — degree-skewed (power-law), so
        # hub vertices' lists stay hot, but with the rank permutation
        # redrawn each round as the frontier moves — and each visited
        # neighbor's properties are a couple of words somewhere in the
        # vertex region.  The next subpage touched after a fault is
        # effectively random — the access shape that defeats
        # predicted-order pipelining.
        wl.add(
            Phase(
                name=f"frontier{i}",
                refs=per_round,
                components=(
                    _comp(
                        adjacency,
                        ZipfPages(alpha=0.9, run_words=10),
                        weight=3.5,
                    ),
                    _comp(
                        vertices,
                        PointerChase(node_bytes=48, touches_per_node=3),
                        weight=2.0,
                        write_fraction=0.25,
                    ),
                    _comp(
                        frontier,
                        Sequential(stride=8, start_fraction=i / rounds),
                        weight=0.6,
                        write_fraction=0.5,
                    ),
                    _comp(code, code_hot, weight=1.0),
                ),
                interleave_chunk=32,
            )
        )
    return wl


# ---------------------------------------------------------------------------
# mltrain: minibatch training epochs.
# ---------------------------------------------------------------------------


def build_mltrain(scale: float) -> Workload:
    """Minibatch training epochs: shuffled contiguous samples, hot parameters."""
    alloc = RegionAllocator()
    dataset = alloc.allocate_pages("dataset", 820)
    params = alloc.allocate_pages("parameters", 56)
    activations = alloc.allocate_pages("activations", 48)
    code = alloc.allocate_pages("train_code", 20)

    wl = Workload(name="mltrain", dilation=12.0)
    epochs = 7
    per_epoch = int(150_000 * scale)
    params_hot = HotCold(hot_fraction=0.5, hot_prob=0.9)
    for i in range(epochs):
        # An epoch reads the dataset in shuffled minibatches: sample
        # *starts* are random (a fresh shuffle each epoch), but each
        # sample is a long contiguous read — half a page of sequential
        # words — so the post-fault subpage order is highly
        # predictable, the access shape pipelining rewards.
        wl.add(
            Phase(
                name=f"epoch{i}",
                refs=per_epoch,
                components=(
                    _comp(
                        dataset,
                        RandomUniform(align=4096, run_words=512),
                        weight=3.0,
                    ),
                    _comp(
                        params,
                        params_hot,
                        weight=2.5,
                        write_fraction=0.4,
                    ),
                    _comp(
                        activations,
                        Sequential(stride=8, start_fraction=i / epochs),
                        weight=1.0,
                        write_fraction=0.9,
                    ),
                    _comp(code, HotCold(hot_fraction=0.4), weight=1.0),
                ),
                interleave_chunk=256,
            )
        )
    return wl


# ---------------------------------------------------------------------------
# websess: bursty web-session serving.
# ---------------------------------------------------------------------------


def build_websess(scale: float) -> Workload:
    """Bursty web-session serving: request spikes with session churn, hot templates."""
    alloc = RegionAllocator()
    sessions = alloc.allocate_pages("session_store", 300)
    content = alloc.allocate_pages("templates", 120)
    code = alloc.allocate_pages("app_code", 20)

    wl = Workload(name="websess", dilation=4.0)
    spikes = 9
    spike_refs = int(38_000 * scale)
    lull_refs = int(30_000 * scale)
    content_hot = HotCold(hot_fraction=0.25, hot_prob=0.95)
    code_hot = HotCold(hot_fraction=0.5, hot_prob=0.95)
    for i in range(spikes):
        # Traffic spike: a burst of requests over Zipf-popular session
        # objects (small scattered reads/writes) while fresh sessions
        # are written at the allocation frontier — a steep fault burst.
        wl.add(
            Phase(
                name=f"spike{i}",
                refs=spike_refs,
                components=(
                    _comp(
                        sessions,
                        ZipfPages(alpha=0.95, run_words=8),
                        weight=3.0,
                        write_fraction=0.3,
                    ),
                    _comp(
                        sessions,
                        Sequential(stride=8, start_fraction=i / spikes),
                        weight=0.7,
                        write_fraction=0.9,
                    ),
                    _comp(content, content_hot, weight=1.5),
                    _comp(code, code_hot, weight=1.0),
                ),
                interleave_chunk=32,
            )
        )
        # Lull: mostly template rendering and code over the hot set.
        wl.add(
            Phase(
                name=f"lull{i}",
                refs=lull_refs,
                components=(
                    _comp(content, content_hot, weight=4.0),
                    _comp(
                        sessions,
                        ZipfPages(alpha=1.2, run_words=8),
                        weight=1.0,
                        write_fraction=0.2,
                    ),
                    _comp(code, code_hot, weight=2.0),
                ),
            )
        )
    return wl
