"""Synthetic workload generation.

The paper traces five real applications with Atom (Section 4).  Neither the
traces nor the 1996 binaries are available, so this package synthesizes
reference streams whose *behavioural* statistics — spatial locality within
pages, temporal clustering of faults, footprint, and exec-time : fault-time
ratio — are calibrated to what the paper reports for each application.
See DESIGN.md section 2 for the substitution argument.
"""

from repro.trace.synth.apps import (
    APP_MODELS,
    INGEST_PREFIX,
    AppModel,
    SyntheticTrace,
    app_names,
    build_app_trace,
    classic_app_names,
    get_app_model,
    modern_app_names,
)
from repro.trace.synth.patterns import (
    AccessPattern,
    HotCold,
    PointerChase,
    RandomUniform,
    Sequential,
    Strided,
    ZipfPages,
)
from repro.trace.synth.phases import Phase, PhaseComponent, Workload
from repro.trace.synth.regions import Region, RegionAllocator
from repro.trace.synth.stackdist import (
    StackDistanceSpec,
    generate_stack_distance_trace,
    measure_stack_distances,
)

__all__ = [
    "APP_MODELS",
    "AccessPattern",
    "AppModel",
    "INGEST_PREFIX",
    "HotCold",
    "Phase",
    "PhaseComponent",
    "PointerChase",
    "RandomUniform",
    "Region",
    "RegionAllocator",
    "Sequential",
    "StackDistanceSpec",
    "Strided",
    "SyntheticTrace",
    "Workload",
    "ZipfPages",
    "app_names",
    "build_app_trace",
    "classic_app_names",
    "generate_stack_distance_trace",
    "measure_stack_distances",
    "get_app_model",
    "modern_app_names",
]
