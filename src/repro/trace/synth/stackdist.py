"""LRU stack-distance workload generation.

A classic workload-modeling alternative to the region/phase generator:
references are produced so that the *LRU stack distance* of each page
visit follows a target distribution.  Stack distance is the canonical
locality metric — reuse of a recently-touched page has a small distance,
a working-set miss a large one — so a stack-distance generator lets the
reproduction check that its conclusions do not hinge on the
region/phase/pattern family used for the five application models.

The generator keeps an explicit LRU stack of pages.  Each *visit* draws
a stack depth from a (truncated, Zipf-weighted) distribution; depth
``d`` re-references the d-th most recently used page, while a draw past
the current stack top brings in a brand-new page.  Each visit touches
``run_words`` consecutive words at a random offset, giving the intra-page
locality real programs have.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.trace.compress import RunTrace, compress_references
from repro.trace.synth.patterns import WORD_BYTES


@dataclass(frozen=True, slots=True)
class StackDistanceSpec:
    """Parameters of a stack-distance workload.

    ``theta`` is the Zipf exponent over stack depths: larger values mean
    tighter locality (most visits hit the very top of the stack).
    ``new_page_prob`` is the chance a visit references a page never seen
    before (bounded by ``max_pages``), which controls footprint growth.
    """

    refs: int
    theta: float = 0.8
    max_depth: int = 64
    new_page_prob: float = 0.02
    max_pages: int = 512
    run_words: int = 16
    page_bytes: int = 8192
    write_fraction: float = 0.1
    name: str = "stackdist"

    def __post_init__(self) -> None:
        if self.refs < 0:
            raise ConfigError("refs cannot be negative")
        if self.theta < 0:
            raise ConfigError("theta cannot be negative")
        if self.max_depth < 1:
            raise ConfigError("max_depth must be >= 1")
        if not 0.0 <= self.new_page_prob <= 1.0:
            raise ConfigError("new_page_prob must be in [0, 1]")
        if self.max_pages < 1:
            raise ConfigError("max_pages must be >= 1")
        if self.run_words < 1:
            raise ConfigError("run_words must be >= 1")


def generate_stack_distance_trace(
    spec: StackDistanceSpec, seed: int = 0, dilation: float = 1.0
) -> RunTrace:
    """Build a :class:`RunTrace` whose page visits follow ``spec``."""
    rng = np.random.default_rng(seed)
    visits = -(-spec.refs // spec.run_words)

    depth_weights = 1.0 / np.power(
        np.arange(1, spec.max_depth + 1, dtype=np.float64), spec.theta
    )
    depth_weights /= depth_weights.sum()

    stack: list[int] = []
    next_page = 0
    pages = np.empty(visits, dtype=np.int64)
    draw_depth = rng.choice(spec.max_depth, size=visits, p=depth_weights)
    draw_new = rng.random(visits) < spec.new_page_prob
    for i in range(visits):
        want_new = (
            draw_new[i] or not stack or draw_depth[i] >= len(stack)
        ) and next_page < spec.max_pages
        if want_new:
            page = next_page
            next_page += 1
        elif stack:
            page = stack[-1 - (int(draw_depth[i]) % len(stack))]
            stack.remove(page)
        else:  # pragma: no cover - max_pages=0 edge guarded above
            page = 0
        stack.append(page)
        pages[i] = page

    words_per_page = spec.page_bytes // WORD_BYTES
    start = rng.integers(
        0, max(1, words_per_page - spec.run_words), size=visits
    )
    base = pages * spec.page_bytes + start * WORD_BYTES
    run = np.arange(spec.run_words, dtype=np.int64) * WORD_BYTES
    addrs = (base[:, None] + run[None, :]).reshape(-1)[: spec.refs]

    writes = np.zeros(spec.refs, dtype=bool)
    if spec.write_fraction > 0:
        # Whole visits become writes, preserving run compression.
        write_visits = rng.random(visits) < spec.write_fraction
        writes = np.repeat(write_visits, spec.run_words)[: spec.refs]

    return compress_references(
        addrs,
        writes,
        page_bytes=spec.page_bytes,
        dilation=dilation,
        name=spec.name,
    )


def measure_stack_distances(trace: RunTrace, limit: int = 100_000):
    """Empirical LRU stack-distance histogram of a trace's page visits.

    Returns ``{depth: count}`` with ``-1`` keying first-ever touches.
    Used to verify generated traces (and to characterize the app models).
    """
    stack: list[int] = []
    histogram: dict[int, int] = {}
    last_page = None
    seen = 0
    for page in trace.pages[: limit * 4]:
        page = int(page)
        if page == last_page:
            continue
        last_page = page
        seen += 1
        if seen > limit:
            break
        if page in stack:
            depth = len(stack) - 1 - stack.index(page)
            stack.remove(page)
        else:
            depth = -1
        stack.append(page)
        histogram[depth] = histogram.get(depth, 0) + 1
    return histogram
