"""Calibrated models of the paper's five traced applications.

The paper (Section 4) traces:

* **Modula-3** — DEC SRC compiler compiling ``smalldb``; 87M references,
  773–5655 faults; *average* benefit among the applications.
* **ld** — the Unix linker linking Digital Unix; 102M references,
  6807–10629 faults (the most fault-intensive trace).
* **Atom** — the tracing tool instrumenting gzip; 73M references,
  1175–5275 faults; *smooth*, low fault-rate behaviour (Figure 10) and the
  smallest benefit (Figure 9).
* **Render** — a graphics walkthrough over a >100 MB precomputed database;
  245M references, 1433–6145 faults.
* **gdb** — debugger initialization; 0.5M references, 138–882 faults;
  highly *bursty* faulting (Figure 10) and the largest I/O-overlap share.

Each model here is a phased synthetic workload scaled ~10–90x down in
reference count (so pure-Python simulation is tractable) with a time
``dilation`` factor that restores the paper's exec-time : fault-time
regime, and a page footprint chosen so fault counts land in the paper's
reported ranges.  Shapes — clustering, locality, relative benefit — are
the calibration targets, not absolute times (see DESIGN.md section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ConfigError
from repro.trace.compress import RunTrace
from repro.trace.synth import modern
from repro.trace.synth.patterns import (
    HotCold,
    PointerChase,
    RandomUniform,
    Sequential,
    ZipfPages,
)
from repro.trace.synth.phases import Phase, PhaseComponent, Workload
from repro.trace.synth.regions import Region, RegionAllocator


@dataclass(frozen=True, slots=True)
class AppModel:
    """Description and builder for one application's synthetic workload.

    ``era`` separates the paper's 1996 quintet (``"1996"``) from the
    modern far-memory families (``"modern"``); paper-specific figures
    iterate :func:`classic_app_names` while the ``figZOO`` grid judges
    policies on all of :func:`app_names`.  For modern families,
    ``paper_fault_range`` is the *design* calibration band asserted by
    the scorecard, not a 1996 measurement.
    """

    name: str
    description: str
    paper_refs_millions: float
    paper_fault_range: tuple[int, int]
    builder: Callable[[float], Workload]
    default_scale: float = 1.0
    era: str = "1996"

    def build_workload(self, scale: float | None = None) -> Workload:
        """Construct the (unbuilt) phased workload at the given scale."""
        return self.builder(self.default_scale if scale is None else scale)

    def build(
        self, seed: int = 0, scale: float | None = None
    ) -> "SyntheticTrace":
        """Build the trace together with its provenance."""
        return SyntheticTrace(
            model=self,
            trace=self.build_workload(scale).build(seed),
            seed=seed,
        )


@dataclass(frozen=True, slots=True)
class SyntheticTrace:
    """A built trace together with the model and seed that produced it."""

    model: AppModel
    trace: RunTrace
    seed: int

    @property
    def name(self) -> str:
        return self.model.name


def _comp(
    region: Region, pattern, weight: float = 1.0, write_fraction: float = 0.0
) -> PhaseComponent:
    return PhaseComponent(
        region=region,
        pattern=pattern,
        weight=weight,
        write_fraction=write_fraction,
    )


# ---------------------------------------------------------------------------
# Modula-3: compile of several units; parse/check/emit sub-phases per unit.
# ---------------------------------------------------------------------------


def _modula3(scale: float) -> Workload:
    alloc = RegionAllocator()
    units = 6
    sources = [
        alloc.allocate_pages(f"source{i}", 24) for i in range(units)
    ]
    ast = alloc.allocate_pages("ast_heap", 96)
    symtab = alloc.allocate_pages("symtab", 48)
    output = alloc.allocate_pages("object_out", 64)
    code = alloc.allocate_pages("compiler_code", 64)

    wl = Workload(name="modula3", dilation=36.0)
    per_unit = int(400_000 * scale)
    code_hot = HotCold(hot_fraction=0.25, hot_prob=0.97)
    for i, source in enumerate(sources):
        frac = i / units
        wl.add(
            Phase(
                name=f"parse{i}",
                refs=int(per_unit * 0.35),
                components=(
                    _comp(source, Sequential(stride=8), weight=3.0),
                    _comp(
                        ast,
                        ZipfPages(alpha=1.0, run_words=24),
                        weight=2.0,
                        write_fraction=0.5,
                    ),
                    _comp(code, code_hot, weight=2.0),
                ),
            )
        )
        wl.add(
            Phase(
                name=f"check{i}",
                refs=int(per_unit * 0.35),
                components=(
                    _comp(ast, ZipfPages(alpha=1.05, run_words=24), weight=3.0),
                    _comp(
                        symtab,
                        ZipfPages(alpha=0.9, run_words=12),
                        weight=1.5,
                        write_fraction=0.2,
                    ),
                    _comp(code, code_hot, weight=2.5),
                ),
            )
        )
        wl.add(
            Phase(
                name=f"emit{i}",
                refs=int(per_unit * 0.30),
                components=(
                    _comp(ast, ZipfPages(alpha=0.9, run_words=20), weight=2.0),
                    _comp(
                        output,
                        Sequential(stride=8, start_fraction=frac),
                        weight=1.5,
                        write_fraction=0.9,
                    ),
                    _comp(code, code_hot, weight=2.0),
                ),
            )
        )
    return wl


# ---------------------------------------------------------------------------
# ld: two passes over many object files; heaviest faulting trace.
# ---------------------------------------------------------------------------


def _ld(scale: float) -> Workload:
    alloc = RegionAllocator()
    nobj = 12
    objs = [alloc.allocate_pages(f"obj{i}", 20) for i in range(nobj)]
    symtab = alloc.allocate_pages("symtab", 64)
    image = alloc.allocate_pages("image_out", 100)
    code = alloc.allocate_pages("ld_code", 32)

    wl = Workload(name="ld", dilation=39.0)
    per_obj1 = int(90_000 * scale)
    per_obj2 = int(120_000 * scale)
    code_hot = HotCold(hot_fraction=0.3, hot_prob=0.9)
    # Pass 1: symbol-table construction.  Object files are *parsed*, not
    # byte-copied: headers are read sequentially but symbols and section
    # contents are visited scattered (a few subpages per page visit), so
    # fault bursts overlap their follow-on transfers.
    for i, obj in enumerate(objs):
        wl.add(
            Phase(
                name=f"scan{i}",
                refs=per_obj1,
                components=(
                    _comp(
                        obj,
                        ZipfPages(alpha=0.15, run_words=40),
                        weight=2.5,
                    ),
                    _comp(obj, Sequential(stride=8), weight=0.8),
                    _comp(
                        symtab,
                        ZipfPages(alpha=0.4, run_words=8),
                        weight=1.0,
                        write_fraction=0.5,
                    ),
                    _comp(code, code_hot, weight=1.2),
                ),
                interleave_chunk=96,
            )
        )
    # Pass 2: relocation — scattered reads of each object driven by the
    # symbol table, writes streaming into the output image.
    for i, obj in enumerate(objs):
        frac = i / nobj
        wl.add(
            Phase(
                name=f"reloc{i}",
                refs=per_obj2,
                components=(
                    _comp(
                        obj,
                        RandomUniform(run_words=32),
                        weight=2.0,
                    ),
                    _comp(symtab, RandomUniform(run_words=12), weight=1.0),
                    _comp(
                        image,
                        Sequential(stride=8, start_fraction=frac),
                        weight=1.5,
                        write_fraction=0.9,
                    ),
                    _comp(code, code_hot, weight=1.0),
                ),
                interleave_chunk=96,
            )
        )
    return wl


# ---------------------------------------------------------------------------
# Atom: instrumentation pass — smooth, steady drift; low clustering.
# ---------------------------------------------------------------------------


def _atom(scale: float) -> Workload:
    alloc = RegionAllocator()
    binary = alloc.allocate_pages("target_binary", 160)
    analysis = alloc.allocate_pages("analysis_heap", 48)
    out = alloc.allocate_pages("instrumented_out", 96)
    code = alloc.allocate_pages("atom_code", 32)

    # A single long pass: the scan over the binary (and the matching output
    # writes) drifts forward at a constant rate while most references hit
    # the hot analysis heap.  Fault arrivals are therefore near-uniform in
    # time — the smooth curve of Figure 10.
    wl = Workload(name="atom", dilation=30.0)
    slices = 40
    per_slice = int(50_000 * scale)
    for i in range(slices):
        frac = i / slices
        wl.add(
            Phase(
                name=f"slice{i}",
                refs=per_slice,
                components=(
                    _comp(
                        binary,
                        Sequential(stride=8, start_fraction=frac),
                        weight=1.0,
                    ),
                    # Occasional cross-references while rewriting (branch
                    # targets): a light scattered component — atom stays
                    # the smoothest, lowest-benefit application.
                    _comp(
                        binary,
                        RandomUniform(run_words=24),
                        weight=0.06,
                    ),
                    _comp(
                        analysis,
                        HotCold(hot_fraction=0.4, hot_prob=0.95),
                        weight=6.0,
                        write_fraction=0.3,
                    ),
                    _comp(
                        out,
                        Sequential(stride=8, start_fraction=frac),
                        weight=0.8,
                        write_fraction=0.95,
                    ),
                    _comp(
                        code,
                        HotCold(hot_fraction=0.4, hot_prob=0.9),
                        weight=2.0,
                    ),
                ),
                interleave_chunk=128,
            )
        )
    return wl


# ---------------------------------------------------------------------------
# Render: walkthrough over a large precomputed scene database.
# ---------------------------------------------------------------------------


def _render(scale: float) -> Workload:
    alloc = RegionAllocator()
    db = alloc.allocate_pages("scene_db", 1400)
    scene_graph = alloc.allocate_pages("scene_graph", 64)
    framebuf = alloc.allocate_pages("framebuffer", 48)
    code = alloc.allocate_pages("render_code", 32)

    wl = Workload(name="render", dilation=87.0)
    frames = 8
    per_frame = int(350_000 * scale)
    for i in range(frames):
        wl.add(
            Phase(
                name=f"frame{i}",
                # Each frame reshuffles the Zipf rank permutation (new rng
                # draws), modelling a viewpoint shift: a different slice of
                # the database becomes hot, producing a fault burst.
                refs=per_frame,
                components=(
                    _comp(
                        db,
                        ZipfPages(alpha=1.1, run_words=48),
                        weight=3.0,
                    ),
                    _comp(
                        scene_graph,
                        PointerChase(node_bytes=128, touches_per_node=3),
                        weight=1.0,
                    ),
                    _comp(
                        framebuf,
                        Sequential(stride=8),
                        weight=1.5,
                        write_fraction=0.95,
                    ),
                    _comp(
                        code,
                        HotCold(hot_fraction=0.3, hot_prob=0.9),
                        weight=1.5,
                    ),
                ),
            )
        )
    return wl


# ---------------------------------------------------------------------------
# gdb: initialization — bursts of library loading between compute lulls.
# ---------------------------------------------------------------------------


def _gdb(scale: float) -> Workload:
    alloc = RegionAllocator()
    nlibs = 10
    libs = [alloc.allocate_pages(f"lib{i}", 10) for i in range(nlibs)]
    heap = alloc.allocate_pages("gdb_heap", 12)
    symtab = alloc.allocate_pages("gdb_symtab", 24)
    code = alloc.allocate_pages("gdb_code", 8)

    wl = Workload(name="gdb", dilation=1.0)
    load_refs = int(9_000 * scale)
    digest_refs = int(40_000 * scale)
    heap_hot = HotCold(hot_fraction=0.5, hot_prob=0.95)
    for i, lib in enumerate(libs):
        wl.add(
            Phase(
                name=f"load{i}",
                # Rapid symbol-table parse of a library: a steep fault
                # burst touching a few subpages per page in scattered
                # order, so in-flight rest-of-page transfers overlap the
                # next faults (gdb has the paper's highest I/O-overlap
                # share, 83%).
                refs=load_refs,
                components=(
                    _comp(
                        lib,
                        RandomUniform(run_words=40),
                        weight=4.0,
                    ),
                    _comp(lib, Sequential(stride=8), weight=1.0),
                    _comp(
                        symtab,
                        Sequential(stride=8, start_fraction=i / nlibs),
                        weight=1.0,
                        write_fraction=0.9,
                    ),
                ),
                interleave_chunk=64,
            )
        )
        wl.add(
            Phase(
                name=f"digest{i}",
                # Long compute on the (resident) heap: a fault lull.
                refs=digest_refs,
                components=(
                    _comp(heap, heap_hot, weight=5.0, write_fraction=0.3),
                    _comp(code, HotCold(hot_fraction=0.5), weight=2.0),
                ),
            )
        )
        if i >= 2 and i % 2 == 0:
            # Cross-library symbol resolution: revisit earlier libraries
            # in a scattered burst.  Resident at full memory (no faults);
            # under pressure these revisits refault evicted pages, giving
            # the paper's 138 -> 882 fault growth across configurations.
            revisit = libs[: i]
            wl.add(
                Phase(
                    name=f"resolve{i}",
                    refs=int(6_000 * scale) * len(revisit) // 2,
                    components=tuple(
                        _comp(lib, RandomUniform(run_words=48), weight=1.0)
                        for lib in revisit
                    )
                    + (
                        _comp(
                            symtab,
                            RandomUniform(run_words=16),
                            weight=1.5,
                        ),
                    ),
                    interleave_chunk=64,
                )
            )
    return wl


APP_MODELS: dict[str, AppModel] = {
    "modula3": AppModel(
        name="modula3",
        description="DEC SRC Modula-3 compiler compiling smalldb",
        paper_refs_millions=87.0,
        paper_fault_range=(773, 5655),
        builder=_modula3,
    ),
    "ld": AppModel(
        name="ld",
        description="Unix linker linking Digital Unix V3.2",
        paper_refs_millions=102.0,
        paper_fault_range=(6807, 10629),
        builder=_ld,
    ),
    "atom": AppModel(
        name="atom",
        description="Atom instrumenting the gzip binary",
        paper_refs_millions=73.0,
        paper_fault_range=(1175, 5275),
        builder=_atom,
    ),
    "render": AppModel(
        name="render",
        description="Graphics walkthrough over a >100MB scene database",
        paper_refs_millions=245.0,
        paper_fault_range=(1433, 6145),
        builder=_render,
    ),
    "gdb": AppModel(
        name="gdb",
        description="GNU debugger initialization phase",
        paper_refs_millions=0.5,
        paper_fault_range=(138, 882),
        builder=_gdb,
    ),
    # -- modern far-memory families (repro.trace.synth.modern) --
    "kvserve": AppModel(
        name="kvserve",
        description="Zipfian key-value serving (memcached-style)",
        paper_refs_millions=1.0,
        paper_fault_range=(600, 6000),
        builder=modern.build_kvserve,
        era="modern",
    ),
    "graph": AppModel(
        name="graph",
        description="Graph analytics: BFS/pagerank frontier processing",
        paper_refs_millions=0.95,
        paper_fault_range=(2000, 20000),
        builder=modern.build_graph,
        era="modern",
    ),
    "mltrain": AppModel(
        name="mltrain",
        description="ML-training epochs over a shuffled dataset",
        paper_refs_millions=1.05,
        paper_fault_range=(600, 6000),
        builder=modern.build_mltrain,
        era="modern",
    ),
    "websess": AppModel(
        name="websess",
        description="Bursty web-session traffic with session churn",
        paper_refs_millions=0.61,
        paper_fault_range=(500, 8000),
        builder=modern.build_websess,
        era="modern",
    ),
}


#: Prefix of app names that resolve to ingested trace files
#: (``ingest:<path>``); see :mod:`repro.ingest`.
INGEST_PREFIX = "ingest:"


def app_names() -> tuple[str, ...]:
    """Names of all registered application families, classics first."""
    return classic_app_names() + modern_app_names()


def classic_app_names() -> tuple[str, ...]:
    """The paper's five 1996 applications, in the paper's order."""
    return ("modula3", "ld", "atom", "render", "gdb")


def modern_app_names() -> tuple[str, ...]:
    """The modern far-memory families, in registration order."""
    return tuple(
        name for name, model in APP_MODELS.items() if model.era == "modern"
    )


def get_app_model(name: str) -> AppModel:
    try:
        return APP_MODELS[name]
    except KeyError:
        known = ", ".join(sorted(APP_MODELS))
        raise ConfigError(
            f"unknown app {name!r}; known apps: {known} "
            f"(or '{INGEST_PREFIX}<path>' for an ingested trace file)"
        ) from None


def build_app_trace(
    name: str, seed: int = 0, scale: float | None = None
) -> RunTrace:
    """Build the named application's trace (deterministic per seed).

    A name of the form ``ingest:<path>`` loads an ingested trace file
    instead: a ``.npz`` written by :func:`repro.trace.encode.save_trace`
    loads directly, any other file converts through
    :func:`repro.ingest.ingest_file` (with the environment-configured
    converted-trace cache).  ``seed`` and ``scale`` do not apply to
    ingested traces and are ignored.
    """
    if name.startswith(INGEST_PREFIX):
        return _load_ingested(name[len(INGEST_PREFIX):])
    model = get_app_model(name)
    return model.build_workload(scale).build(seed)


def _load_ingested(path: str) -> RunTrace:
    """Resolve the payload of an ``ingest:<path>`` app name."""
    # Local import: repro.ingest pulls in repro.envknobs and gzip; the
    # synthetic-app registry must stay importable without them loaded.
    from repro.ingest import default_cache_dir, ingest_file
    from repro.trace.encode import load_trace

    if path.endswith(".npz"):
        return load_trace(path)
    return ingest_file(path, cache=default_cache_dir())
