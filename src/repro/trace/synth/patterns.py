"""Vectorized access-pattern generators.

Each pattern produces an array of virtual addresses inside a region.  All
generation is numpy-vectorized so multi-million-reference traces build in
well under a second.

The patterns are the vocabulary the application models (``apps.py``) are
written in:

* :class:`Sequential` — a linear scan; gives the strong ``+1`` next-subpage
  locality the paper measures (Figure 7).
* :class:`Strided` — regular strides, e.g. column-major matrix walks.
* :class:`RandomUniform` — no locality at all.
* :class:`ZipfPages` — skewed page popularity with short sequential bursts
  inside each touched page; models heap/symbol-table access.
* :class:`HotCold` — a small hot set absorbing most references.
* :class:`PointerChase` — a pseudo-random permutation walk; models linked
  data structures (worst-case spatial locality, deterministic coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigError
from repro.trace.synth.regions import Region

#: Default access width; the Alpha is a 64-bit machine.
WORD_BYTES = 8


@runtime_checkable
class AccessPattern(Protocol):
    """Anything that can generate addresses within a region."""

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Return ``n`` int64 addresses inside ``region``."""
        ...


def _check_n(n: int) -> None:
    if n < 0:
        raise ConfigError(f"cannot generate {n} references")


@dataclass(frozen=True, slots=True)
class Sequential:
    """Linear scan through the region with a fixed stride, wrapping.

    ``start_fraction`` places the scan's starting offset, so successive
    phases can resume where a previous scan left off.
    """

    stride: int = WORD_BYTES
    start_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.stride <= 0:
            raise ConfigError("stride must be positive")
        if not 0.0 <= self.start_fraction < 1.0:
            raise ConfigError("start_fraction must be in [0, 1)")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        slots = max(1, region.size // self.stride)
        start = int(self.start_fraction * slots)
        idx = (start + np.arange(n, dtype=np.int64)) % slots
        return region.base + idx * self.stride


@dataclass(frozen=True, slots=True)
class Strided:
    """Strided walk (e.g. across rows); wraps with a one-word phase shift.

    A stride larger than the subpage size defeats subpage prefetch; larger
    than the page size, it defeats pages entirely.
    """

    stride: int
    element_bytes: int = WORD_BYTES

    def __post_init__(self) -> None:
        if self.stride <= 0 or self.element_bytes <= 0:
            raise ConfigError("stride and element_bytes must be positive")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        offsets = (
            np.arange(n, dtype=np.int64) * self.stride
            + (np.arange(n, dtype=np.int64) * self.stride // region.size)
            * self.element_bytes
        ) % region.size
        return region.base + offsets


@dataclass(frozen=True, slots=True)
class RandomUniform:
    """Uniformly random visits, each touching a short run of words.

    ``run_words`` consecutive words are read per visit, modelling the
    struct- or cache-line-level locality real code has even when its page
    access pattern is random.
    """

    align: int = WORD_BYTES
    run_words: int = 8

    def __post_init__(self) -> None:
        if self.align <= 0:
            raise ConfigError("align must be positive")
        if self.run_words <= 0:
            raise ConfigError("run_words must be positive")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        slots = max(1, region.size // self.align)
        visits = -(-n // self.run_words)
        idx = rng.integers(0, slots, size=visits, dtype=np.int64)
        return _expand_runs(
            region.base + idx * self.align, self.run_words, n, region
        )


@dataclass(frozen=True, slots=True)
class ZipfPages:
    """Zipf-skewed page popularity with short sequential runs per visit.

    Page ``k`` (0-based rank) is visited with probability proportional to
    ``1 / (k + 1) ** alpha``; each visit touches ``run_words`` consecutive
    words starting at a random word of the page.  ``shuffle_ranks`` decouples
    popularity rank from address order, which is the realistic case.
    """

    alpha: float = 0.9
    run_words: int = 16
    page_bytes: int = 8192
    shuffle_ranks: bool = True

    def __post_init__(self) -> None:
        if self.alpha < 0:
            raise ConfigError("alpha must be >= 0")
        if self.run_words <= 0:
            raise ConfigError("run_words must be positive")
        if self.page_bytes <= 0:
            raise ConfigError("page_bytes must be positive")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        pages = max(1, region.size // self.page_bytes)
        weights = 1.0 / np.power(np.arange(1, pages + 1, dtype=np.float64),
                                 self.alpha)
        weights /= weights.sum()
        visits = -(-n // self.run_words)
        ranks = rng.choice(pages, size=visits, p=weights)
        if self.shuffle_ranks:
            perm = rng.permutation(pages)
            ranks = perm[ranks]
        words_per_page = max(1, self.page_bytes // WORD_BYTES)
        start_words = rng.integers(0, words_per_page, size=visits)
        # Expand each visit into a sequential run of run_words words.
        base_addr = (
            region.base
            + ranks.astype(np.int64) * self.page_bytes
            + start_words.astype(np.int64) * WORD_BYTES
        )
        run = np.arange(self.run_words, dtype=np.int64) * WORD_BYTES
        addrs = (base_addr[:, None] + run[None, :]).reshape(-1)[:n]
        # Keep runs from spilling past the region end.
        np.minimum(addrs, region.end - WORD_BYTES, out=addrs)
        return addrs


@dataclass(frozen=True, slots=True)
class HotCold:
    """A hot subset of the region absorbs most references.

    ``hot_fraction`` of the region (at its start) receives ``hot_prob`` of
    the references via uniform access; the cold remainder receives the rest.
    """

    hot_fraction: float = 0.1
    hot_prob: float = 0.9
    align: int = WORD_BYTES
    run_words: int = 12

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigError("hot_fraction must be in (0, 1]")
        if not 0.0 <= self.hot_prob <= 1.0:
            raise ConfigError("hot_prob must be in [0, 1]")
        if self.align <= 0:
            raise ConfigError("align must be positive")
        if self.run_words <= 0:
            raise ConfigError("run_words must be positive")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        hot_bytes = max(self.align, int(region.size * self.hot_fraction))
        hot_slots = max(1, hot_bytes // self.align)
        cold_slots = max(1, (region.size - hot_bytes) // self.align)
        visits = -(-n // self.run_words)
        is_hot = rng.random(visits) < self.hot_prob
        idx = np.where(
            is_hot,
            rng.integers(0, hot_slots, size=visits, dtype=np.int64),
            hot_slots
            + rng.integers(0, cold_slots, size=visits, dtype=np.int64),
        )
        return _expand_runs(
            region.base + idx * self.align, self.run_words, n, region
        )


@dataclass(frozen=True, slots=True)
class PointerChase:
    """Walk a pseudo-random permutation of fixed-size nodes.

    Models traversing a linked structure whose nodes were allocated in a
    shuffled order: consecutive accesses land on unrelated pages, the
    worst case for any prefetching scheme.  The permutation is an affine
    map ``(a * i + b) mod num_nodes`` with ``a`` coprime to ``num_nodes``,
    which visits every node exactly once per cycle without materializing a
    permutation table.
    """

    node_bytes: int = 64
    touches_per_node: int = 2

    def __post_init__(self) -> None:
        if self.node_bytes < WORD_BYTES:
            raise ConfigError("node_bytes must be at least one word")
        if self.touches_per_node <= 0:
            raise ConfigError("touches_per_node must be positive")

    def generate(
        self, region: Region, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        _check_n(n)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        num_nodes = max(1, region.size // self.node_bytes)
        a = _random_coprime(num_nodes, rng)
        b = int(rng.integers(0, num_nodes))
        visits = -(-n // self.touches_per_node)
        i = np.arange(visits, dtype=np.int64)
        nodes = (a * i + b) % num_nodes
        touch = np.arange(self.touches_per_node, dtype=np.int64) * WORD_BYTES
        addrs = (
            region.base
            + nodes[:, None] * self.node_bytes
            + touch[None, :]
        ).reshape(-1)[:n]
        return addrs


def _expand_runs(
    base_addrs: np.ndarray, run_words: int, n: int, region: Region
) -> np.ndarray:
    """Expand per-visit base addresses into runs of consecutive words."""
    run = np.arange(run_words, dtype=np.int64) * WORD_BYTES
    addrs = (base_addrs[:, None] + run[None, :]).reshape(-1)[:n]
    np.minimum(addrs, region.end - WORD_BYTES, out=addrs)
    return addrs


def _random_coprime(modulus: int, rng: np.random.Generator) -> int:
    """A multiplier coprime to ``modulus`` (1 when modulus is 1)."""
    if modulus <= 1:
        return 1
    for _ in range(64):
        candidate = int(rng.integers(1, modulus))
        if np.gcd(candidate, modulus) == 1:
            return candidate
    # Fall back to 1, which is always coprime.
    return 1
