"""Address-space regions for synthetic workloads.

A :class:`Region` is a contiguous chunk of virtual address space (a mapped
file, a heap arena, an object-file image...).  The :class:`RegionAllocator`
lays regions out page-aligned with guard gaps so that distinct regions never
share a page — phase changes between regions then produce the fault bursts
the paper attributes to program phase changes (Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.units import FULL_PAGE_BYTES


@dataclass(frozen=True, slots=True)
class Region:
    """A named, contiguous range of virtual address space."""

    name: str
    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ConfigError(f"region {self.name!r}: negative base")
        if self.size <= 0:
            raise ConfigError(f"region {self.name!r}: size must be positive")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def pages(self, page_bytes: int = FULL_PAGE_BYTES) -> int:
        """Number of pages the region spans (assuming aligned base)."""
        return -(-self.size // page_bytes)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class RegionAllocator:
    """Sequentially allocates page-aligned, non-overlapping regions."""

    def __init__(
        self,
        *,
        page_bytes: int = FULL_PAGE_BYTES,
        base: int = 0x0001_0000_0000,
        guard_pages: int = 4,
    ) -> None:
        if guard_pages < 1:
            raise ConfigError("guard_pages must be >= 1")
        self._page_bytes = page_bytes
        self._next = _align_up(base, page_bytes)
        self._guard = guard_pages * page_bytes
        self._regions: list[Region] = []

    @property
    def regions(self) -> tuple[Region, ...]:
        return tuple(self._regions)

    def allocate(self, name: str, size: int) -> Region:
        """Allocate a new region of ``size`` bytes (rounded up to a page)."""
        if size <= 0:
            raise ConfigError(f"region {name!r}: size must be positive")
        size = _align_up(size, self._page_bytes)
        region = Region(name=name, base=self._next, size=size)
        self._next = region.end + self._guard
        self._regions.append(region)
        return region

    def allocate_pages(self, name: str, pages: int) -> Region:
        """Allocate a region spanning exactly ``pages`` pages."""
        if pages <= 0:
            raise ConfigError(f"region {name!r}: pages must be positive")
        return self.allocate(name, pages * self._page_bytes)

    def total_pages(self) -> int:
        """Total pages across all allocated regions (excluding guards)."""
        return sum(r.pages(self._page_bytes) for r in self._regions)


def _align_up(value: int, align: int) -> int:
    return -(-value // align) * align
