"""Phased workload composition.

A :class:`Workload` is a list of :class:`Phase` objects executed in order.
Each phase interleaves one or more ``(region, pattern)`` components.  Phase
boundaries that shift the set of touched regions are what produce the
bursts of page faults the paper observes at program phase changes
(Section 4.2, Figures 6 and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.trace.compress import RunTrace, compress_references
from repro.trace.synth.patterns import AccessPattern
from repro.trace.synth.regions import Region

#: Writes are emitted in contiguous stretches of this many references so
#: that write/read flips do not shatter run-length compression.
WRITE_STRETCH = 32


@dataclass(frozen=True, slots=True)
class PhaseComponent:
    """One strand of a phase: a pattern over a region with a weight."""

    region: Region
    pattern: AccessPattern
    weight: float = 1.0
    write_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigError("component weight must be positive")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ConfigError("write_fraction must be in [0, 1]")


@dataclass(frozen=True, slots=True)
class Phase:
    """A program phase: ``refs`` references split across components.

    ``interleave_chunk`` is the granularity (in references) at which the
    components are woven together; small chunks model tight loops touching
    several structures, large chunks model distinct passes.
    """

    name: str
    refs: int
    components: tuple[PhaseComponent, ...]
    interleave_chunk: int = 256

    def __post_init__(self) -> None:
        if self.refs < 0:
            raise ConfigError(f"phase {self.name!r}: refs must be >= 0")
        if not self.components:
            raise ConfigError(f"phase {self.name!r}: needs >= 1 component")
        if self.interleave_chunk <= 0:
            raise ConfigError(
                f"phase {self.name!r}: interleave_chunk must be positive"
            )

    def generate(
        self, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Return (addresses, writes) arrays for this phase."""
        if self.refs == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)

        weights = np.array([c.weight for c in self.components], dtype=float)
        shares = weights / weights.sum()
        counts = np.floor(shares * self.refs).astype(int)
        counts[0] += self.refs - int(counts.sum())

        streams = []
        for component, count in zip(self.components, counts):
            addrs = component.pattern.generate(
                component.region, int(count), rng
            )
            writes = _write_stretches(
                int(count), component.write_fraction, rng
            )
            streams.append((addrs, writes))

        if len(streams) == 1:
            return streams[0]
        return _interleave(streams, self.interleave_chunk, rng)


@dataclass(slots=True)
class Workload:
    """An ordered sequence of phases that builds into a :class:`RunTrace`."""

    name: str
    phases: list[Phase] = field(default_factory=list)
    page_bytes: int = 8192
    block_bytes: int = 256
    dilation: float = 1.0

    def add(self, phase: Phase) -> "Workload":
        self.phases.append(phase)
        return self

    @property
    def total_refs(self) -> int:
        return sum(p.refs for p in self.phases)

    def build(self, seed: int = 0) -> RunTrace:
        """Generate, concatenate, and compress all phases."""
        if not self.phases:
            raise ConfigError(f"workload {self.name!r} has no phases")
        rng = np.random.default_rng(seed)
        addr_parts: list[np.ndarray] = []
        write_parts: list[np.ndarray] = []
        for phase in self.phases:
            addrs, writes = phase.generate(rng)
            addr_parts.append(addrs)
            write_parts.append(writes)
        addresses = np.concatenate(addr_parts)
        writes = np.concatenate(write_parts)
        return compress_references(
            addresses,
            writes,
            page_bytes=self.page_bytes,
            block_bytes=self.block_bytes,
            dilation=self.dilation,
            name=self.name,
        )


def _write_stretches(
    n: int, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Mark ~``fraction`` of ``n`` refs as writes, in contiguous stretches."""
    writes = np.zeros(n, dtype=bool)
    if fraction <= 0.0 or n == 0:
        return writes
    if fraction >= 1.0:
        writes[:] = True
        return writes
    stretches = max(1, round(n * fraction / WRITE_STRETCH))
    starts = rng.integers(0, max(1, n - WRITE_STRETCH), size=stretches)
    for start in starts:
        writes[start : start + WRITE_STRETCH] = True
    return writes


def _interleave(
    streams: list[tuple[np.ndarray, np.ndarray]],
    chunk: int,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Weave several (addresses, writes) streams together chunk by chunk.

    Chunks are drawn from the streams in a randomized round-robin whose
    draw probabilities match the remaining lengths, so the mix stays
    roughly proportional throughout the phase.
    """
    # Random merge preserving each stream's internal chunk order, so a
    # sequential scan stays temporally sequential even when interleaved
    # with other strands.
    chunk_counts = [-(-len(addrs) // chunk) for addrs, _ in streams]
    turn_order = np.concatenate(
        [np.full(c, i, dtype=np.int64) for i, c in enumerate(chunk_counts)]
    )
    rng.shuffle(turn_order)
    cursors = [0] * len(streams)
    addr_out: list[np.ndarray] = []
    write_out: list[np.ndarray] = []
    for idx in turn_order:
        start = cursors[idx]
        stop = min(start + chunk, len(streams[idx][0]))
        cursors[idx] = stop
        addr_out.append(streams[idx][0][start:stop])
        write_out.append(streams[idx][1][start:stop])
    return np.concatenate(addr_out), np.concatenate(write_out)
