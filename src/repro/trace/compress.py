"""Run-length compression of memory-reference streams.

The simulator never needs to see two consecutive references to the same
256-byte block individually: a fault or a stall can only happen on the
*first* access to a (page, block) pair, and every later reference in the
run simply advances the clock by one event.  Compressing the reference
stream into ``(page, block, count, write)`` runs therefore loses nothing
for the machine model the paper simulates, while making multi-million
reference traces tractable in Python.

Runs are split at 256-byte-block granularity — the finest protection
granularity of the prototype — so a single compressed trace can be
simulated at *any* subpage size (subpage indices are derived from block
indices on the fly).  A run is also split whenever the access type flips
from read to write, so dirty-page tracking stays exact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import TraceError
from repro.units import FULL_PAGE_BYTES, MIN_SUBPAGE_BYTES, is_power_of_two


def index_dtype(count: int) -> type:
    """Narrowest signed dtype that can index ``count`` items (plus the
    sentinels the scan structures use: ``count`` itself and ``-1``)."""
    return np.int32 if count < 2**31 else np.int64


class TraceColumns:
    """Precomputed per-run columns for the simulator engines.

    One instance per (trace, subpage size), cached on the owning
    :class:`RunTrace` so sweeps that revisit a trace (or a subpage size)
    pay the array→list conversion once.  Holds both the plain-Python
    lists the per-run loops iterate fastest over and the NumPy views the
    fast engine's bulk span processing slices.
    """

    __slots__ = (
        "pages",
        "subpages",
        "blocks",
        "counts",
        "writes",
        "pages_arr",
        "counts_f64",
        "writes_arr",
        "switch_arr",
        "switch_cum",
        "writes_cum",
        "_prods",
    )

    def __init__(
        self, trace: "RunTrace", subpage_bytes: int,
        base: "TraceColumns | None" = None,
    ) -> None:
        self.subpages = trace.subpages(subpage_bytes).tolist()
        if base is not None:
            # Only the subpage column depends on the subpage size; the
            # rest is shared with whatever was built first.
            self.pages = base.pages
            self.blocks = base.blocks
            self.counts = base.counts
            self.writes = base.writes
            self.pages_arr = base.pages_arr
            self.counts_f64 = base.counts_f64
            self.writes_arr = base.writes_arr
            self.switch_arr = base.switch_arr
            self.switch_cum = base.switch_cum
            self.writes_cum = base.writes_cum
            self._prods = base._prods
            return
        self.pages = trace.pages.tolist()
        self.blocks = trace.blocks.tolist()
        self.counts = trace.counts.tolist()
        self.writes = trace.writes.tolist()
        self.pages_arr = trace.pages.astype(np.int64, copy=False)
        # Exact (counts are far below 2**53): one float64 multiply per
        # run matches the reference loop's scalar ``count * event_ms``.
        self.counts_f64 = trace.counts.astype(np.float64)
        self.writes_arr = np.asarray(trace.writes, dtype=bool)
        n = len(self.pages)
        # Page-switch structure: switch_arr[k] says run k references a
        # different page than run k-1 (run 0 always "switches" — no
        # page id is negative, so it also differs from the engines'
        # initial last_page of -1).  The cumulative sums give any
        # span's switch/write count in O(1).
        self.switch_arr = np.empty(n, dtype=bool)
        if n:
            self.switch_arr[0] = True
            np.not_equal(
                self.pages_arr[1:], self.pages_arr[:-1],
                out=self.switch_arr[1:],
            )
        # Derived index arrays use the narrowest dtype the run count
        # permits: int32 halves the per-process cache (and the fast
        # engines' slice traffic) for every real trace, int64 only past
        # 2**31-1 runs.  Only *derived* caches downsize — the RunTrace
        # run arrays themselves feed ``fingerprint()`` (raw bytes), so
        # their dtype is part of the trace's content address.
        idx = index_dtype(n)
        self.switch_cum = np.zeros(n + 1, dtype=idx)
        np.cumsum(self.switch_arr, dtype=idx, out=self.switch_cum[1:])
        self.writes_cum = np.zeros(n + 1, dtype=idx)
        np.cumsum(self.writes_arr, dtype=idx, out=self.writes_cum[1:])
        #: event_ms -> counts * event_ms products, shared with every
        #: subpage size's columns (``base._prods`` above) so a whole
        #: grid of cells computes each clock-product vector once.
        self._prods = {}

    def prods(self, event_ms: float) -> np.ndarray:
        """The per-run clock products at ``event_ms``, computed once.

        Bitwise-identical to the reference loop's scalar
        ``count * event_ms`` (one IEEE multiply per run, same operands).
        """
        arr = self._prods.get(event_ms)
        if arr is None:
            arr = self._prods[event_ms] = self.counts_f64 * event_ms
        return arr


@dataclass(frozen=True, slots=True)
class RunTrace:
    """A run-length-compressed memory-reference trace.

    Attributes
    ----------
    pages:
        Virtual page number of each run (``int64``).
    blocks:
        Block index (0..blocks_per_page-1) of each run within its page
        (``int16``).
    counts:
        Number of consecutive references in each run (``int64``).
    writes:
        Whether each run is a run of writes (``bool``).
    page_bytes / block_bytes:
        The granularities the trace was compressed at.
    dilation:
        Time-dilation factor: each simulated reference statistically
        represents ``dilation`` references of the workload being modelled.
        The simulator multiplies its per-event cost by this factor, which is
        how down-scaled synthetic traces preserve the paper's exec-time :
        fault-time regime (see DESIGN.md).
    name:
        Optional workload name, carried through to results.
    """

    pages: np.ndarray
    blocks: np.ndarray
    counts: np.ndarray
    writes: np.ndarray
    page_bytes: int = FULL_PAGE_BYTES
    block_bytes: int = MIN_SUBPAGE_BYTES
    dilation: float = 1.0
    name: str = "trace"
    _footprint: list[int] = field(
        default_factory=list, repr=False, compare=False
    )
    _cols: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = len(self.pages)
        for label, arr in (
            ("blocks", self.blocks),
            ("counts", self.counts),
            ("writes", self.writes),
        ):
            if len(arr) != n:
                raise TraceError(
                    f"{label} has length {len(arr)}, expected {n}"
                )
        if not is_power_of_two(self.page_bytes):
            raise TraceError(f"bad page size {self.page_bytes}")
        if not is_power_of_two(self.block_bytes):
            raise TraceError(f"bad block size {self.block_bytes}")
        if self.block_bytes > self.page_bytes:
            raise TraceError("block size exceeds page size")
        if self.dilation <= 0:
            raise TraceError(f"dilation must be positive, got {self.dilation}")
        if n and int(self.counts.min(initial=1)) < 1:
            raise TraceError("run counts must be >= 1")
        bpp = self.blocks_per_page
        if n and (int(self.blocks.min()) < 0 or int(self.blocks.max()) >= bpp):
            raise TraceError(f"block indices must lie in [0, {bpp})")

    # -- basic shape ----------------------------------------------------

    def __len__(self) -> int:
        """Number of runs (not references)."""
        return len(self.pages)

    @property
    def num_runs(self) -> int:
        return len(self.pages)

    @property
    def num_references(self) -> int:
        """Total number of memory references represented."""
        return int(self.counts.sum()) if len(self.counts) else 0

    @property
    def blocks_per_page(self) -> int:
        return self.page_bytes // self.block_bytes

    @property
    def compression_ratio(self) -> float:
        """References per run; 1.0 means no compression happened."""
        return self.num_references / max(1, self.num_runs)

    # -- derived workload properties -------------------------------------

    def footprint_pages(self) -> int:
        """Number of distinct pages the trace touches."""
        if not self._footprint:
            unique = len(np.unique(self.pages)) if len(self.pages) else 0
            self._footprint.append(unique)
        return self._footprint[0]

    def footprint_bytes(self) -> int:
        return self.footprint_pages() * self.page_bytes

    def write_fraction(self) -> float:
        """Fraction of references that are writes."""
        total = self.num_references
        if total == 0:
            return 0.0
        return float(self.counts[self.writes].sum()) / total

    def subpages(self, subpage_bytes: int) -> np.ndarray:
        """Per-run subpage index at granularity ``subpage_bytes``."""
        if not is_power_of_two(subpage_bytes):
            raise TraceError(f"bad subpage size {subpage_bytes}")
        if subpage_bytes < self.block_bytes:
            raise TraceError(
                f"subpage size {subpage_bytes} finer than trace block "
                f"granularity {self.block_bytes}"
            )
        if subpage_bytes > self.page_bytes:
            raise TraceError(
                f"subpage size {subpage_bytes} exceeds page size "
                f"{self.page_bytes}"
            )
        return self.blocks // (subpage_bytes // self.block_bytes)

    def columns(self, subpage_bytes: int) -> TraceColumns:
        """Cached :class:`TraceColumns` at ``subpage_bytes`` granularity.

        The simulator engines iterate these instead of re-converting the
        arrays per run; size-independent columns are shared across the
        cached entries.
        """
        cols = self._cols.get(subpage_bytes)
        if cols is None:
            base = next(
                (c for c in self._cols.values()
                 if isinstance(c, TraceColumns)),
                None,
            )
            cols = TraceColumns(self, subpage_bytes, base)
            self._cols[subpage_bytes] = cols
        return cols

    def fingerprint(self) -> str:
        """Stable content fingerprint of the trace (cached).

        Hashes the run arrays together with the granularities, dilation,
        and name.  The parallel executor keys its result cache on this,
        and the shared-memory arena uses it to publish each unique trace
        exactly once — caching it here means a 50-cell sweep over one
        trace hashes the arrays once, not 50 times.
        """
        fp = self._cols.get("fp")
        if fp is None:
            digest = hashlib.sha256()
            for arr in (self.pages, self.blocks, self.counts, self.writes):
                digest.update(np.ascontiguousarray(arr).tobytes())
            meta = (
                f"{self.page_bytes}:{self.block_bytes}:{self.dilation}:"
                f"{self.name}"
            )
            digest.update(meta.encode())
            fp = f"sha:{digest.hexdigest()}"
            self._cols["fp"] = fp
        return fp

    def occurrences(self) -> dict[int, list[int]]:
        """Cached map of page -> ascending run indices touching it.

        The fast engine's interesting-event heap walks these lists to
        find each page's next occurrence.  Built with one stable argsort
        of the page column.
        """
        occ = self._cols.get("occ")
        if occ is None:
            occ = {}
            pages = self.pages
            if len(pages):
                order = np.argsort(pages, kind="stable")
                sorted_pages = pages[order]
                bounds = np.flatnonzero(
                    sorted_pages[1:] != sorted_pages[:-1]
                ) + 1
                start = 0
                for stop in (*bounds.tolist(), len(pages)):
                    occ[int(sorted_pages[start])] = order[
                        start:stop
                    ].tolist()
                    start = stop
            self._cols["occ"] = occ
        return occ

    def __getstate__(self):
        # The column/occurrence caches can dwarf the arrays themselves;
        # pickled traces (worker fan-out, result caches) ship without
        # them and each process rebuilds lazily.
        return {
            slot: getattr(self, slot)
            for slot in self.__slots__
            if slot not in ("_cols", "_footprint")
        }

    def __setstate__(self, state) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_footprint", [])
        object.__setattr__(self, "_cols", {})

    def slice(self, start: int, stop: int) -> "RunTrace":
        """A new trace holding runs ``start:stop``."""
        return RunTrace(
            pages=self.pages[start:stop],
            blocks=self.blocks[start:stop],
            counts=self.counts[start:stop],
            writes=self.writes[start:stop],
            page_bytes=self.page_bytes,
            block_bytes=self.block_bytes,
            dilation=self.dilation,
            name=self.name,
        )

    def with_dilation(self, dilation: float) -> "RunTrace":
        """The same runs with a different time-dilation factor."""
        return RunTrace(
            pages=self.pages,
            blocks=self.blocks,
            counts=self.counts,
            writes=self.writes,
            page_bytes=self.page_bytes,
            block_bytes=self.block_bytes,
            dilation=dilation,
            name=self.name,
        )

    def with_page_size(self, page_bytes: int) -> "RunTrace":
        """Re-derive page/block indices at a different page size.

        Used by the small-pages comparison (paper Section 2.1): the same
        reference stream viewed through e.g. 1K pages.  The new page size
        must be a multiple of the block granularity.
        """
        if not is_power_of_two(page_bytes):
            raise TraceError(f"bad page size {page_bytes}")
        if page_bytes < self.block_bytes:
            raise TraceError(
                f"page size {page_bytes} below block granularity "
                f"{self.block_bytes}"
            )
        global_blocks = (
            self.pages * np.int64(self.blocks_per_page)
            + self.blocks.astype(np.int64)
        )
        new_bpp = page_bytes // self.block_bytes
        return RunTrace(
            pages=global_blocks // new_bpp,
            blocks=(global_blocks % new_bpp).astype(np.int16),
            counts=self.counts,
            writes=self.writes,
            page_bytes=page_bytes,
            block_bytes=self.block_bytes,
            dilation=self.dilation,
            name=self.name,
        )

    def renamed(self, name: str) -> "RunTrace":
        return RunTrace(
            pages=self.pages,
            blocks=self.blocks,
            counts=self.counts,
            writes=self.writes,
            page_bytes=self.page_bytes,
            block_bytes=self.block_bytes,
            dilation=self.dilation,
            name=name,
        )


def compress_references(
    addresses: np.ndarray,
    writes: np.ndarray | None = None,
    *,
    page_bytes: int = FULL_PAGE_BYTES,
    block_bytes: int = MIN_SUBPAGE_BYTES,
    dilation: float = 1.0,
    name: str = "trace",
) -> RunTrace:
    """Run-length compress a raw address stream into a :class:`RunTrace`.

    Parameters
    ----------
    addresses:
        Virtual addresses, any integer dtype.
    writes:
        Optional parallel boolean array; ``None`` means all reads.
    """
    addresses = np.asarray(addresses)
    if addresses.ndim != 1:
        raise TraceError("addresses must be a 1-D array")
    if addresses.size and int(addresses.min()) < 0:
        raise TraceError("addresses must be non-negative")
    n = addresses.size
    if writes is None:
        writes = np.zeros(n, dtype=bool)
    else:
        writes = np.asarray(writes, dtype=bool)
        if writes.shape != addresses.shape:
            raise TraceError("writes must parallel addresses")

    if n == 0:
        empty64 = np.empty(0, dtype=np.int64)
        return RunTrace(
            pages=empty64,
            blocks=np.empty(0, dtype=np.int16),
            counts=empty64.copy(),
            writes=np.empty(0, dtype=bool),
            page_bytes=page_bytes,
            block_bytes=block_bytes,
            dilation=dilation,
            name=name,
        )

    addresses = addresses.astype(np.int64, copy=False)
    global_blocks = addresses // block_bytes
    # A run breaks when the (global) block changes or the access type flips.
    breaks = np.empty(n, dtype=bool)
    breaks[0] = True
    np.not_equal(global_blocks[1:], global_blocks[:-1], out=breaks[1:])
    breaks[1:] |= writes[1:] != writes[:-1]
    starts = np.flatnonzero(breaks)
    counts = np.diff(np.append(starts, n)).astype(np.int64)

    run_blocks_global = global_blocks[starts]
    blocks_per_page = page_bytes // block_bytes
    pages = run_blocks_global // blocks_per_page
    blocks = (run_blocks_global % blocks_per_page).astype(np.int16)

    return RunTrace(
        pages=pages,
        blocks=blocks,
        counts=counts,
        writes=writes[starts].copy(),
        page_bytes=page_bytes,
        block_bytes=block_bytes,
        dilation=dilation,
        name=name,
    )


def concatenate(traces: list[RunTrace], name: str | None = None) -> RunTrace:
    """Concatenate several compatible traces into one.

    Adjacent runs at the seam are merged when they refer to the same block
    with the same access type, so concatenation commutes with compression.
    """
    if not traces:
        raise TraceError("cannot concatenate zero traces")
    first = traces[0]
    for t in traces[1:]:
        if (
            t.page_bytes != first.page_bytes
            or t.block_bytes != first.block_bytes
        ):
            raise TraceError("traces have mismatched granularities")
        if t.dilation != first.dilation:
            raise TraceError("traces have mismatched dilation")
    pages = np.concatenate([t.pages for t in traces])
    blocks = np.concatenate([t.blocks for t in traces])
    counts = np.concatenate([t.counts for t in traces])
    writes = np.concatenate([t.writes for t in traces])

    if len(pages) > 1:
        same = np.zeros(len(pages), dtype=bool)
        same[1:] = (
            (pages[1:] == pages[:-1])
            & (blocks[1:] == blocks[:-1])
            & (writes[1:] == writes[:-1])
        )
        keep = ~same
        # Fold counts of merged runs into the surviving run before them.
        group = np.cumsum(keep) - 1
        folded = np.zeros(int(group[-1]) + 1, dtype=np.int64)
        np.add.at(folded, group, counts)
        pages, blocks, writes = pages[keep], blocks[keep], writes[keep]
        counts = folded

    return RunTrace(
        pages=pages,
        blocks=blocks,
        counts=counts,
        writes=writes,
        page_bytes=first.page_bytes,
        block_bytes=first.block_bytes,
        dilation=first.dilation,
        name=name if name is not None else first.name,
    )
