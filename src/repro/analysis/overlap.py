"""I/O-overlap vs computational-overlap attribution (paper Section 4.4).

Eager fullpage fetch hides the rest-of-page transfer behind whatever the
program does during the in-flight window [subpage arrival, rest-of-page
arrival]:

* time the program spends **stalled on other faults** during the window is
  *overlapped I/O* — two transfers in flight at once;
* time the program spends **executing** during the window is
  *overlapped computation*;
* time spent stalled waiting for subpages of the *same* page (page_wait)
  is not hidden at all — it is the unhidden remainder.

The paper reports the share of speedup due to overlapped I/O as 53%
(Atom) to 83% (gdb).  This module computes the same attribution from a
run's fault windows and its global stall-interval record.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.fault import FaultKind
from repro.sim.results import SimulationResult


@dataclass(frozen=True, slots=True)
class OverlapAttribution:
    """Where the rest-of-page in-flight windows went."""

    label: str
    #: Window time hidden behind stalls on *other* faults.
    io_overlap_ms: float
    #: Window time hidden behind program execution.
    comp_overlap_ms: float
    #: Window time the program spent waiting for this page (unhidden).
    own_wait_ms: float
    num_windows: int

    @property
    def total_window_ms(self) -> float:
        return self.io_overlap_ms + self.comp_overlap_ms + self.own_wait_ms

    @property
    def hidden_ms(self) -> float:
        """The benefit: window time actually overlapped with something."""
        return self.io_overlap_ms + self.comp_overlap_ms

    @property
    def io_share(self) -> float:
        """Fraction of the hidden (beneficial) time that was I/O overlap.

        This is the quantity the paper reports per application (53-83%).
        """
        hidden = self.hidden_ms
        return 0.0 if hidden <= 0 else self.io_overlap_ms / hidden


def _interval_overlap_ms(
    starts: np.ndarray,
    ends: np.ndarray,
    cumulative: np.ndarray,
    lo: float,
    hi: float,
) -> float:
    """Total overlap of disjoint sorted intervals with [lo, hi]."""
    if hi <= lo or starts.size == 0:
        return 0.0
    # Intervals possibly intersecting [lo, hi]: those with end > lo and
    # start < hi.
    first = int(np.searchsorted(ends, lo, side="right"))
    last = int(np.searchsorted(starts, hi, side="left"))
    if first >= last:
        return 0.0
    total = float(cumulative[last] - cumulative[first])
    # Clip the boundary intervals.
    total -= max(0.0, lo - float(starts[first]))
    total -= max(0.0, float(ends[last - 1]) - hi)
    return max(0.0, total)


def attribute_overlap(
    result: SimulationResult, label: str | None = None
) -> OverlapAttribution:
    """Attribute every remote fault's in-flight window (see module doc)."""
    stalls = result.stall_intervals
    starts = np.array([s for s, _ in stalls], dtype=float)
    ends = np.array([e for _, e in stalls], dtype=float)
    durations = ends - starts
    cumulative = np.concatenate([[0.0], np.cumsum(durations)])

    io_ms = 0.0
    comp_ms = 0.0
    own_ms = 0.0
    windows = 0
    for record in result.fault_records:
        if record.kind is not FaultKind.REMOTE:
            continue
        lo, hi = record.window_start_ms, record.window_end_ms
        if hi <= lo:
            continue
        windows += 1
        stalled = _interval_overlap_ms(starts, ends, cumulative, lo, hi)
        own = 0.0
        for s, e in record.page_wait_intervals:
            own += max(0.0, min(e, hi) - max(s, lo))
        own_ms += own
        io = max(0.0, stalled - own)
        io_ms += io
        comp_ms += max(0.0, (hi - lo) - stalled)
    return OverlapAttribution(
        label=label if label is not None else result.trace_name,
        io_overlap_ms=io_ms,
        comp_overlap_ms=comp_ms,
        own_wait_ms=own_ms,
        num_windows=windows,
    )
