"""Analysis: turning simulation results into the paper's figures.

Each module corresponds to an analytical view in the paper:

* :mod:`repro.analysis.waiting` — sorted per-fault waiting-time curves and
  their three-segment decomposition (Figure 5);
* :mod:`repro.analysis.clustering` — temporal fault clustering and
  burstiness metrics (Figures 6 and 10);
* :mod:`repro.analysis.distances` — next-subpage distance distributions
  (Figure 7);
* :mod:`repro.analysis.overlap` — attribution of eager-fetch benefit to
  overlapped I/O vs overlapped computation (Section 4.4);
* :mod:`repro.analysis.speedup` — improvement/speedup summaries
  (Figures 3, 8, 9);
* :mod:`repro.analysis.report` — plain-text tables and bar charts for
  terminal output.
"""

from repro.analysis.clustering import (
    ClusteringCurve,
    burstiness_index,
    clustering_curve,
    fraction_in_bursts,
)
from repro.analysis.distances import (
    DistanceDistribution,
    distance_distribution,
)
from repro.analysis.overlap import OverlapAttribution, attribute_overlap
from repro.analysis.report import (
    ascii_bar_chart,
    format_table,
    percent,
)
from repro.analysis.speedup import (
    ImprovementSummary,
    improvement_summary,
)
from repro.analysis.waiting import (
    WaitingCurve,
    WaitingSegments,
    waiting_curve,
)

__all__ = [
    "ClusteringCurve",
    "DistanceDistribution",
    "ImprovementSummary",
    "OverlapAttribution",
    "WaitingCurve",
    "WaitingSegments",
    "ascii_bar_chart",
    "attribute_overlap",
    "burstiness_index",
    "clustering_curve",
    "distance_distribution",
    "format_table",
    "fraction_in_bursts",
    "improvement_summary",
    "percent",
]
