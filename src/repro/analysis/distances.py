"""Next-subpage distance distributions (paper Figure 7).

After a page fault on subpage *i*, which subpage of the same page does the
program touch next?  The paper measures the signed distance (next - i) and
finds strong spatial locality: "there is a high likelihood that the next
subpage faulted on the same page will be the next consecutive subpage
(distance +1)" (Section 4.3).  This distribution is what justifies the
+1/-1 pipelining order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.results import SimulationResult


@dataclass(frozen=True, slots=True)
class DistanceDistribution:
    """Histogram of signed next-subpage distances."""

    label: str
    counts: dict[int, int]

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def probability(self, distance: int) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return self.counts.get(distance, 0) / total

    def probabilities(self) -> dict[int, float]:
        total = self.total
        if total == 0:
            return {}
        return {
            d: c / total for d, c in sorted(self.counts.items())
        }

    def top(self, n: int = 5) -> list[tuple[int, float]]:
        """The ``n`` most likely distances, most likely first."""
        if n < 1:
            raise ConfigError("n must be >= 1")
        return sorted(
            self.probabilities().items(), key=lambda kv: -kv[1]
        )[:n]

    def mass_within(self, radius: int) -> float:
        """Probability that the next access is within +/-``radius``."""
        if radius < 1:
            raise ConfigError("radius must be >= 1")
        return sum(
            self.probability(d)
            for d in range(-radius, radius + 1)
            if d != 0
        )

    def as_sequencer_profile(self) -> dict[int, float]:
        """The profile a :class:`repro.core.DistanceSequencer` wants."""
        return {d: p for d, p in self.probabilities().items() if d != 0}


def distance_distribution(
    result: SimulationResult, label: str | None = None
) -> DistanceDistribution:
    """Extract Figure 7's distribution from a simulation result.

    Requires the run to have been configured with
    ``track_distances=True`` (the default).
    """
    return DistanceDistribution(
        label=(
            label
            if label is not None
            else f"{result.trace_name}/{result.subpage_bytes}B"
        ),
        counts=dict(result.distance_histogram),
    )
