"""Improvement and speedup summaries (Figures 3, 8, 9)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.results import SimulationResult


@dataclass(frozen=True, slots=True)
class ImprovementSummary:
    """One candidate's gains over a baseline run."""

    label: str
    baseline_ms: float
    candidate_ms: float
    baseline_page_wait_ms: float
    candidate_page_wait_ms: float

    @property
    def improvement(self) -> float:
        """Fractional runtime reduction (the paper's "% improvement")."""
        if self.baseline_ms <= 0:
            return 0.0
        return 1.0 - self.candidate_ms / self.baseline_ms

    @property
    def speedup(self) -> float:
        if self.candidate_ms <= 0:
            return float("inf")
        return self.baseline_ms / self.candidate_ms

    @property
    def page_wait_reduction(self) -> float:
        """Fractional page_wait reduction (Figure 8: 42% at 1K)."""
        if self.baseline_page_wait_ms <= 0:
            return 0.0
        return 1.0 - self.candidate_page_wait_ms / self.baseline_page_wait_ms


def improvement_summary(
    baseline: SimulationResult,
    candidate: SimulationResult,
    label: str | None = None,
) -> ImprovementSummary:
    """Summarize ``candidate`` against ``baseline``.

    Both runs must be of the same trace, or the comparison is
    meaningless.
    """
    if baseline.trace_name != candidate.trace_name:
        raise ConfigError(
            f"comparing different traces: {baseline.trace_name!r} vs "
            f"{candidate.trace_name!r}"
        )
    return ImprovementSummary(
        label=(
            label
            if label is not None
            else f"{candidate.scheme_label} vs {baseline.scheme_label}"
        ),
        baseline_ms=baseline.total_ms,
        candidate_ms=candidate.total_ms,
        baseline_page_wait_ms=baseline.components.page_wait_ms,
        candidate_page_wait_ms=candidate.components.page_wait_ms,
    )
