"""Temporal clustering of page faults (paper Figures 6 and 10).

The paper plots cumulative fault count against simulated time: steep
(near-vertical) jumps are bursts — periods of high fault rate, typically
program phase changes — and it is during those bursts that eager fullpage
fetch finds its I/O overlap.  "The larger the fraction of faults that
occur during these periods of high faulting the greater the expected
increase in performance" (Section 4.2).

Two scalar summaries accompany the curve:

* :func:`fraction_in_bursts` — the fraction of faults whose gap to the
  previous fault is below a threshold (defaults to the rest-of-page
  transfer time, the natural scale for I/O overlap);
* :func:`burstiness_index` — the coefficient of variation of inter-fault
  gaps (0 for perfectly regular arrivals, ~1 for Poisson, larger for
  bursty).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.sim.results import SimulationResult


@dataclass(frozen=True, slots=True)
class ClusteringCurve:
    """Cumulative faults vs time for one run."""

    label: str
    times_ms: np.ndarray  # fault occurrence times, ascending

    @property
    def num_faults(self) -> int:
        return int(self.times_ms.size)

    @property
    def duration_ms(self) -> float:
        return float(self.times_ms[-1]) if self.times_ms.size else 0.0

    def cumulative(self) -> tuple[np.ndarray, np.ndarray]:
        """(time, cumulative fault count) arrays, ready to plot."""
        counts = np.arange(1, self.times_ms.size + 1)
        return self.times_ms, counts

    def sample(self, points: int = 60) -> list[tuple[float, int]]:
        """Evenly-sampled (time, count) pairs for terminal plotting."""
        if self.times_ms.size == 0:
            return []
        idx = np.linspace(
            0, self.times_ms.size - 1, num=min(points, self.times_ms.size)
        ).astype(int)
        return [(float(self.times_ms[i]), int(i) + 1) for i in idx]

    def gaps_ms(self) -> np.ndarray:
        if self.times_ms.size < 2:
            return np.empty(0)
        return np.diff(self.times_ms)


def clustering_curve(
    result: SimulationResult, label: str | None = None
) -> ClusteringCurve:
    times = np.sort(result.fault_times_ms())
    return ClusteringCurve(
        label=label if label is not None else result.trace_name,
        times_ms=times,
    )


def fraction_in_bursts(
    curve: ClusteringCurve, gap_threshold_ms: float = 1.5
) -> float:
    """Fraction of faults arriving within ``gap_threshold_ms`` of the
    previous fault — i.e. during a high-fault-rate period."""
    if gap_threshold_ms <= 0:
        raise ConfigError("gap threshold must be positive")
    gaps = curve.gaps_ms()
    if gaps.size == 0:
        return 0.0
    return float(np.count_nonzero(gaps <= gap_threshold_ms)) / gaps.size


def burstiness_index(curve: ClusteringCurve) -> float:
    """Coefficient of variation of inter-fault gaps."""
    gaps = curve.gaps_ms()
    if gaps.size == 0:
        return 0.0
    mean = float(gaps.mean())
    if mean <= 0:
        return 0.0
    return float(gaps.std()) / mean
