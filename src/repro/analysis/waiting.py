"""Sorted per-fault waiting-time curves (paper Figure 5).

For each page fault the total waiting time is the initial subpage latency
plus any later stalls for the remainder of that page.  Sorting faults by
waiting time (descending) produces a curve with three characteristic
sections (paper Section 4.2):

1. a **best-case plateau** on the right at the subpage transfer latency —
   faults that resumed after the subpage and never stalled again;
2. a **worst-case plateau** on the left at the full-page transfer latency
   — faults that quickly blocked until the whole page arrived;
3. a sloped **middle region** where partial overlap occurred.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.results import SimulationResult


@dataclass(frozen=True, slots=True)
class WaitingSegments:
    """Decomposition of a waiting curve into its three sections.

    Faults within ``tolerance`` of the best-case (subpage) latency count
    as best-case; within ``tolerance`` of the worst-case (fullpage-ish)
    latency as worst-case; the rest form the middle.
    """

    best_case_faults: int
    middle_faults: int
    worst_case_faults: int
    best_case_ms: float
    worst_case_ms: float

    @property
    def total_faults(self) -> int:
        return (
            self.best_case_faults
            + self.middle_faults
            + self.worst_case_faults
        )

    @property
    def best_case_fraction(self) -> float:
        total = self.total_faults
        return 0.0 if not total else self.best_case_faults / total

    @property
    def worst_case_fraction(self) -> float:
        total = self.total_faults
        return 0.0 if not total else self.worst_case_faults / total


@dataclass(frozen=True, slots=True)
class WaitingCurve:
    """One Figure 5 curve: descending per-fault waiting times."""

    label: str
    waits_ms: np.ndarray  # sorted descending
    subpage_latency_ms: float
    fullpage_latency_ms: float

    @property
    def num_faults(self) -> int:
        return int(self.waits_ms.size)

    @property
    def right_intercept_ms(self) -> float:
        """Waiting time of the luckiest fault (the best case)."""
        return float(self.waits_ms[-1]) if self.waits_ms.size else 0.0

    @property
    def left_intercept_ms(self) -> float:
        """Waiting time of the unluckiest fault (the worst case)."""
        return float(self.waits_ms[0]) if self.waits_ms.size else 0.0

    def segments(self, tolerance: float = 0.08) -> WaitingSegments:
        """Classify faults into the three sections of Section 4.2.

        ``tolerance`` is relative to the fullpage latency.
        """
        if self.waits_ms.size == 0:
            return WaitingSegments(0, 0, 0, 0.0, 0.0)
        margin = tolerance * self.fullpage_latency_ms
        best = int(
            np.count_nonzero(
                self.waits_ms <= self.subpage_latency_ms + margin
            )
        )
        worst = int(
            np.count_nonzero(
                self.waits_ms >= self.fullpage_latency_ms - margin
            )
        )
        middle = max(0, self.num_faults - best - worst)
        return WaitingSegments(
            best_case_faults=best,
            middle_faults=middle,
            worst_case_faults=worst,
            best_case_ms=self.subpage_latency_ms,
            worst_case_ms=self.fullpage_latency_ms,
        )

    def sample(self, points: int = 50) -> list[tuple[int, float]]:
        """Evenly-sampled (fault index, waiting ms) pairs for plotting."""
        if self.waits_ms.size == 0:
            return []
        idx = np.linspace(0, self.waits_ms.size - 1, num=min(
            points, self.waits_ms.size
        )).astype(int)
        return [(int(i), float(self.waits_ms[i])) for i in idx]


def waiting_curve(
    result: SimulationResult,
    subpage_latency_ms: float,
    fullpage_latency_ms: float,
    label: str | None = None,
) -> WaitingCurve:
    """Build the Figure 5 curve for one simulation run."""
    waits = np.sort(result.waiting_times_ms())[::-1]
    return WaitingCurve(
        label=label if label is not None else result.scheme_label,
        waits_ms=waits,
        subpage_latency_ms=subpage_latency_ms,
        fullpage_latency_ms=fullpage_latency_ms,
    )
