"""Plain-text reporting: tables and bar charts for terminal output.

The benchmark harness prints the same rows and series the paper's tables
and figures contain; these helpers keep that output consistent and
readable without any plotting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigError


def percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string ("0.254" -> "25.4%")."""
    return f"{value * 100:.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
    float_digits: int = 2,
) -> str:
    """Render a left/right-aligned monospace table.

    Numbers are right-aligned and formatted to ``float_digits``; strings
    are left-aligned.
    """
    if not headers:
        raise ConfigError("table needs headers")

    def fmt(cell: Any) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.{float_digits}f}"
        return str(cell)

    str_rows = [[fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    numeric = [
        bool(str_rows)
        and all(_is_numeric(raw[i]) for raw in rows)
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(
                cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i])
            )
        return "  ".join(parts).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def ascii_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    title: str | None = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """A horizontal bar chart out of '#' characters."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must parallel")
    if width < 1:
        raise ConfigError("width must be >= 1")
    out = []
    if title:
        out.append(title)
    if not values:
        return "\n".join(out)
    peak = max(values)
    label_width = max(len(l) for l in labels)
    for label, value in zip(labels, values):
        bar = "#" * (0 if peak <= 0 else max(
            1 if value > 0 else 0, round(value / peak * width)
        ))
        out.append(
            f"{label.ljust(label_width)}  {bar} {value:.1f}{unit}"
        )
    return "\n".join(out)


def _is_numeric(cell: Any) -> bool:
    return isinstance(cell, (int, float)) and not isinstance(cell, bool)
