"""Environment-knob parsing with documented-default degradation.

Every ``REPRO_*`` integer knob parses through :func:`env_int`, so the
whole family shares one failure policy: a malformed value (``abc``) or
an out-of-range one (``-1`` where the knob needs a positive count)
**degrades to the knob's documented default with a warning** instead of
raising at whatever call site happened to read the environment first.
A sweep should never abort — hours into a run — because a shell
exported ``REPRO_WORKERS=many``.

Knobs that are semantically "at least N" (worker counts) may instead
*clamp* to their minimum, preserving the long-documented behaviour of
``REPRO_WORKERS=0`` meaning serial.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["env_int", "env_str", "EnvKnobWarning"]


class EnvKnobWarning(UserWarning):
    """A ``REPRO_*`` environment knob could not be honoured as given."""


def env_str(name: str, default: str | None = None) -> str | None:
    """The named knob's stripped value, or ``default`` when unset/blank."""
    raw = os.environ.get(name, "").strip()
    return raw if raw else default


def env_int(
    name: str,
    default: int,
    minimum: int | None = None,
    clamp: bool = False,
) -> int:
    """Integer knob ``name``, degrading to ``default`` on bad input.

    * unset or blank: ``default``, silently (not configured at all);
    * unparsable (``REPRO_WORKERS=abc``): ``default``, with an
      :class:`EnvKnobWarning`;
    * below ``minimum``: ``minimum`` when ``clamp`` is set (the knob's
      floor is part of its contract, e.g. worker counts clamp to 1),
      otherwise ``default`` with a warning (the value is nonsense for
      this knob, e.g. a negative cache capacity).
    """
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{name}={raw!r} is not an integer; "
            f"using the default ({default})",
            EnvKnobWarning,
            stacklevel=2,
        )
        return default
    if minimum is not None and value < minimum:
        if clamp:
            return minimum
        warnings.warn(
            f"{name}={value} is below the minimum ({minimum}); "
            f"using the default ({default})",
            EnvKnobWarning,
            stacklevel=2,
        )
        return default
    return value
