"""Epoch-based global page replacement.

GMS approximates global LRU with *epochs* (Feeley et al., SOSP '95): at
the start of each epoch every node reports a summary of its page ages to a
coordinator, which determines the M oldest pages cluster-wide and derives
a per-node weight w_i — the fraction of those M oldest pages held by node
i.  During the epoch, a node that must get rid of a page sends it to a
peer chosen with probability proportional to w_i, so eviction pressure
flows toward the nodes with the coldest memory; pages that are among the
globally oldest are simply discarded (dropped or written to disk).

Here the coordinator sees exact ages (a simulation can afford that); the
paper's duplicate-avoidance and summary-compression details are out of
scope for the subpage study.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, GmsError
from repro.gms.ids import NodeId
from repro.gms.node import Node


@dataclass(frozen=True, slots=True)
class EpochParams:
    """Tuning knobs for the epoch algorithm."""

    #: Number of putpage operations an epoch is expected to absorb; the
    #: coordinator considers this many of the globally oldest pages.
    target_evictions: int = 256
    #: Maximum putpage operations before a recomputation is forced.
    max_epoch_operations: int = 512

    def __post_init__(self) -> None:
        if self.target_evictions <= 0:
            raise ConfigError("target_evictions must be positive")
        if self.max_epoch_operations <= 0:
            raise ConfigError("max_epoch_operations must be positive")


@dataclass(frozen=True, slots=True)
class EpochPlan:
    """The coordinator's output for one epoch."""

    weights: dict[NodeId, float]
    #: Age threshold: pages at least this old are among the globally
    #: oldest M and may be discarded rather than forwarded.
    discard_age_threshold: float
    epoch_index: int


class EpochManager:
    """Computes epoch plans and picks putpage targets from them."""

    def __init__(
        self,
        params: EpochParams | None = None,
        seed: int = 0,
    ) -> None:
        self.params = params if params is not None else EpochParams()
        self._rng = np.random.default_rng(seed)
        self._plan: EpochPlan | None = None
        self._operations = 0
        self._epoch_index = 0

    @property
    def plan(self) -> EpochPlan | None:
        return self._plan

    @property
    def epochs_computed(self) -> int:
        return self._epoch_index

    def recompute(self, nodes: dict[NodeId, Node]) -> EpochPlan:
        """Start a new epoch from the cluster's current page ages."""
        ages: list[tuple[float, NodeId]] = []
        for node in nodes.values():
            for _, age in node.page_ages():
                ages.append((age, node.node_id))
        self._epoch_index += 1
        self._operations = 0
        if not ages:
            weights = {nid: 1.0 / len(nodes) for nid in nodes} if nodes else {}
            self._plan = EpochPlan(
                weights=weights,
                discard_age_threshold=float("-inf"),
                epoch_index=self._epoch_index,
            )
            return self._plan
        ages.sort(key=lambda pair: pair[0])
        m = min(self.params.target_evictions, len(ages))
        oldest = ages[:m]
        threshold = oldest[-1][0]
        counts: dict[NodeId, int] = {nid: 0 for nid in nodes}
        for _, nid in oldest:
            counts[nid] += 1
        weights = {nid: counts[nid] / m for nid in nodes}
        self._plan = EpochPlan(
            weights=weights,
            discard_age_threshold=threshold,
            epoch_index=self._epoch_index,
        )
        return self._plan

    def _ensure_plan(self, nodes: dict[NodeId, Node]) -> EpochPlan:
        if (
            self._plan is None
            or self._operations >= self.params.max_epoch_operations
        ):
            self.recompute(nodes)
        assert self._plan is not None
        return self._plan

    def should_discard(
        self, nodes: dict[NodeId, Node], page_age: float
    ) -> bool:
        """Is a page this old among the globally oldest (just drop it)?

        Discard decisions count toward ``max_epoch_operations``: a
        discard consumes epoch budget just like a forward, so a
        discard-heavy putpage stream still forces recomputation instead
        of comparing against a stale ``discard_age_threshold`` forever.
        """
        plan = self._ensure_plan(nodes)
        self._operations += 1
        return page_age <= plan.discard_age_threshold

    def choose_target(
        self,
        nodes: dict[NodeId, Node],
        exclude: NodeId,
    ) -> NodeId:
        """Pick the node that should receive a putpage from ``exclude``.

        Nodes are drawn with probability proportional to their epoch
        weight; the evicting node itself is excluded (sending a page to
        yourself is a no-op).  Falls back to uniform choice over the other
        nodes when all remaining weights are zero.
        """
        plan = self._ensure_plan(nodes)
        self._operations += 1
        candidates = [nid for nid in nodes if nid != exclude]
        if not candidates:
            raise GmsError("no other node available for putpage")
        raw = np.array(
            [plan.weights.get(nid, 0.0) for nid in candidates], dtype=float
        )
        total = raw.sum()
        if total <= 0:
            probabilities = np.full(len(candidates), 1.0 / len(candidates))
        else:
            probabilities = raw / total
        return candidates[int(self._rng.choice(len(candidates),
                                               p=probabilities))]
