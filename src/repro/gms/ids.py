"""Identifiers used by the global memory system.

GMS names pages with cluster-wide unique identifiers (UIDs) so that any
node can ask the directory about any page.  Here a UID is (node that owns
the address space, virtual page number); nodes are small integers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

NodeId = int


@dataclass(frozen=True, slots=True, order=True)
class PageUid:
    """Cluster-wide unique page identifier."""

    origin: NodeId
    vpn: int

    def __post_init__(self) -> None:
        if self.origin < 0:
            raise ConfigError(f"negative node id {self.origin}")
        if self.vpn < 0:
            raise ConfigError(f"negative virtual page number {self.vpn}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"uid({self.origin}:{self.vpn:#x})"
