"""GMS directories: page ownership (POD) and global cache (GCD).

GMS locates an arbitrary page with two levels of directory (Feeley et
al., SOSP '95):

* the **page-ownership directory (POD)** maps a page UID to the node that
  *manages* that page's directory entry.  It is a static hash of the UID
  over the participating nodes, replicated everywhere (we model it as a
  function);
* the **global-cache directory (GCD)** is the distributed map itself: each
  node holds the authoritative "which node stores page X" entries for the
  UIDs the POD assigns to it.

This module implements both, with per-node entry storage so directory
load can be inspected, plus message counting hooks for the cluster.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, PageNotFoundError
from repro.gms.ids import NodeId, PageUid


class PageOwnershipDirectory:
    """Static hash of UIDs over directory nodes (replicated everywhere)."""

    def __init__(self, nodes: list[NodeId]) -> None:
        if not nodes:
            raise ConfigError("POD needs at least one node")
        self._nodes = tuple(sorted(set(nodes)))

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        return self._nodes

    def manager_of(self, uid: PageUid) -> NodeId:
        """The node managing the GCD entry for ``uid``."""
        return self._nodes[hash(uid) % len(self._nodes)]


@dataclass(slots=True)
class DirectoryStats:
    """Lookup/update counts for one node's GCD shard."""

    lookups: int = 0
    hits: int = 0
    updates: int = 0
    removals: int = 0


class GlobalCacheDirectory:
    """The distributed UID -> storing-node map, sharded by the POD."""

    def __init__(self, pod: PageOwnershipDirectory) -> None:
        self._pod = pod
        self._shards: dict[NodeId, dict[PageUid, NodeId]] = {
            node: {} for node in pod.nodes
        }
        self._sharers: dict[PageUid, set[NodeId]] = {}
        self.stats: dict[NodeId, DirectoryStats] = {
            node: DirectoryStats() for node in pod.nodes
        }

    @property
    def pod(self) -> PageOwnershipDirectory:
        return self._pod

    def shard_sizes(self) -> dict[NodeId, int]:
        return {node: len(shard) for node, shard in self._shards.items()}

    def _shard_for(self, uid: PageUid) -> tuple[NodeId, dict[PageUid, NodeId]]:
        manager = self._pod.manager_of(uid)
        return manager, self._shards[manager]

    def lookup(self, uid: PageUid) -> NodeId:
        """Which node stores ``uid``?  Raises if the page is unknown."""
        manager, shard = self._shard_for(uid)
        self.stats[manager].lookups += 1
        try:
            holder = shard[uid]
        except KeyError:
            raise PageNotFoundError(
                f"directory has no entry for {uid}"
            ) from None
        self.stats[manager].hits += 1
        return holder

    def contains(self, uid: PageUid) -> bool:
        _, shard = self._shard_for(uid)
        return uid in shard

    def update(self, uid: PageUid, holder: NodeId) -> NodeId:
        """Record that ``holder`` now stores ``uid``; returns the manager."""
        manager, shard = self._shard_for(uid)
        shard[uid] = holder
        self.stats[manager].updates += 1
        sharers = self._sharers.get(uid)
        if sharers is not None:
            # The authoritative holder is not also a secondary sharer.
            sharers.discard(holder)
            if not sharers:
                del self._sharers[uid]
        return manager

    def remove(self, uid: PageUid) -> None:
        """Forget ``uid`` (it was dropped or written to disk)."""
        manager, shard = self._shard_for(uid)
        if uid not in shard:
            raise PageNotFoundError(f"directory has no entry for {uid}")
        del shard[uid]
        self._sharers.pop(uid, None)
        self.stats[manager].removals += 1

    def add_sharer(self, uid: PageUid, node: NodeId) -> None:
        """Record that ``node`` holds a secondary (shared) copy of ``uid``.

        The copyset lets ``Cluster.putpage`` promote a surviving copy in
        O(copies) instead of scanning every node in the cluster.  The
        authoritative holder is tracked in the shard map, never here.
        """
        manager, shard = self._shard_for(uid)
        if shard.get(uid) == node:
            return
        self._sharers.setdefault(uid, set()).add(node)

    def remove_sharer(self, uid: PageUid, node: NodeId) -> None:
        """Forget ``node``'s secondary copy of ``uid`` (if recorded)."""
        sharers = self._sharers.get(uid)
        if sharers is None:
            return
        sharers.discard(node)
        if not sharers:
            del self._sharers[uid]

    def sharers(self, uid: PageUid) -> tuple[NodeId, ...]:
        """Nodes holding secondary copies of ``uid``, ascending."""
        return tuple(sorted(self._sharers.get(uid, ())))

    def entries(self):
        """Iterate ``(uid, holder)`` over every authoritative entry."""
        for shard in self._shards.values():
            yield from shard.items()

    def total_entries(self) -> int:
        return sum(len(s) for s in self._shards.values())
