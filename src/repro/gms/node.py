"""A GMS node's memory: local (active) frames plus global (hosted) frames.

Following the GMS design (Feeley et al., SOSP '95), each node's physical
memory divides dynamically between *local* pages — pages its own workload
is actively using — and *global* pages — older pages stored on behalf of
other nodes.  An idle node's memory is almost entirely global; a busy
node's almost entirely local.  Local pages carry an age (last-touch time)
used by the epoch algorithm to find the globally oldest pages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import CapacityError, GmsError
from repro.gms.ids import NodeId, PageUid


@dataclass(frozen=True, slots=True)
class NodeMemoryStats:
    """Snapshot of a node's memory occupancy."""

    node: NodeId
    capacity: int
    local_pages: int
    global_pages: int

    @property
    def free_frames(self) -> int:
        return self.capacity - self.local_pages - self.global_pages


class Node:
    """One cluster node with ``capacity`` page frames."""

    def __init__(self, node_id: NodeId, capacity: int) -> None:
        if capacity < 0:
            raise CapacityError(f"node {node_id}: negative capacity")
        self.node_id = node_id
        self.capacity = capacity
        # OrderedDicts double as LRU lists: oldest first.
        self._local: OrderedDict[PageUid, float] = OrderedDict()
        self._global: OrderedDict[PageUid, float] = OrderedDict()

    # -- introspection ---------------------------------------------------

    @property
    def local_count(self) -> int:
        return len(self._local)

    @property
    def global_count(self) -> int:
        return len(self._global)

    @property
    def used(self) -> int:
        return self.local_count + self.global_count

    @property
    def free_frames(self) -> int:
        return self.capacity - self.used

    def stats(self) -> NodeMemoryStats:
        return NodeMemoryStats(
            node=self.node_id,
            capacity=self.capacity,
            local_pages=self.local_count,
            global_pages=self.global_count,
        )

    def holds_local(self, uid: PageUid) -> bool:
        return uid in self._local

    def holds_global(self, uid: PageUid) -> bool:
        return uid in self._global

    def holds(self, uid: PageUid) -> bool:
        return self.holds_local(uid) or self.holds_global(uid)

    def page_ages(self) -> list[tuple[PageUid, float]]:
        """(uid, last-touch time) for every resident page (both kinds)."""
        out = list(self._local.items())
        out.extend(self._global.items())
        return out

    # -- local page management -------------------------------------------

    def touch_local(self, uid: PageUid, now: float) -> None:
        """Record an access to a local page (moves it to LRU tail)."""
        if uid not in self._local:
            raise GmsError(f"node {self.node_id} has no local {uid}")
        self._local.move_to_end(uid)
        self._local[uid] = now

    def add_local(self, uid: PageUid, now: float) -> None:
        """Install a page as local; requires a free frame."""
        if self.holds(uid):
            raise GmsError(f"node {self.node_id} already holds {uid}")
        if self.free_frames <= 0:
            raise CapacityError(f"node {self.node_id} is full")
        self._local[uid] = now

    def oldest_local(self) -> PageUid | None:
        """The LRU local page, without removing it (None if none)."""
        return next(iter(self._local), None)

    def evict_oldest_local(self) -> PageUid:
        """Remove and return the LRU local page."""
        if not self._local:
            raise GmsError(f"node {self.node_id} has no local pages")
        uid, _ = self._local.popitem(last=False)
        return uid

    def drop_local(self, uid: PageUid) -> None:
        if uid not in self._local:
            raise GmsError(f"node {self.node_id} has no local {uid}")
        del self._local[uid]

    # -- global page management --------------------------------------------

    def add_global(self, uid: PageUid, age: float) -> None:
        """Host a page on behalf of another node; requires a free frame."""
        if self.holds(uid):
            raise GmsError(f"node {self.node_id} already holds {uid}")
        if self.free_frames <= 0:
            raise CapacityError(f"node {self.node_id} is full")
        self._global[uid] = age
        # Keep the global list ordered oldest-first by age.
        self._global.move_to_end(uid)

    def remove_global(self, uid: PageUid) -> None:
        if uid not in self._global:
            raise GmsError(f"node {self.node_id} has no global {uid}")
        del self._global[uid]

    def oldest_global(self) -> PageUid | None:
        """The globally oldest page this node hosts (None if none)."""
        if not self._global:
            return None
        return min(self._global, key=self._global.__getitem__)

    def global_age(self, uid: PageUid) -> float:
        """The recorded age of a hosted global page."""
        try:
            return self._global[uid]
        except KeyError:
            raise GmsError(
                f"node {self.node_id} has no global {uid}"
            ) from None

    def evict_oldest_global(self) -> PageUid:
        uid = self.oldest_global()
        if uid is None:
            raise GmsError(f"node {self.node_id} hosts no global pages")
        del self._global[uid]
        return uid

    def promote_to_local(self, uid: PageUid, now: float) -> None:
        """A hosted page was faulted by *this* node's own workload."""
        if uid not in self._global:
            raise GmsError(f"node {self.node_id} has no global {uid}")
        del self._global[uid]
        self._local[uid] = now
