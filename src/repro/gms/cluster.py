"""The GMS cluster facade: getpage / putpage over nodes and directories.

This is the substrate the faulting node's paging path talks to.  A fault
that misses in local memory asks the cluster where the page is
(``getpage``); an eviction hands the page to the cluster (``putpage``),
which forwards it to an idle node chosen by the epoch algorithm or lets it
fall to disk if it is among the globally oldest.

Message counting follows the GMS protocol shape: a getpage costs a request
to the page's directory manager, a forward to the storing node, and the
data transfer back; a putpage costs the data transfer plus a directory
update.  Messages to oneself are free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import CapacityError, GmsError
from repro.gms.directory import GlobalCacheDirectory, PageOwnershipDirectory
from repro.gms.epoch import EpochManager, EpochParams
from repro.gms.ids import NodeId, PageUid
from repro.gms.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.instrument import Instrument


class PageLocation(enum.Enum):
    """Where a faulted page was found."""

    LOCAL_GLOBAL = "requester-global"  # hosted by the requester itself
    REMOTE_MEMORY = "remote"
    DISK = "disk"


@dataclass(frozen=True, slots=True)
class GetPageResult:
    """Outcome of one getpage operation."""

    uid: PageUid
    location: PageLocation
    serving_node: NodeId | None
    messages: int


@dataclass(slots=True)
class ClusterStats:
    """Cumulative protocol statistics."""

    getpages: int = 0
    remote_hits: int = 0
    local_global_hits: int = 0
    #: Remote hits served by *copying* a page another node is actively
    #: using (a shared page, e.g. library code) rather than moving it.
    shared_copies: int = 0
    disk_fills: int = 0
    putpages: int = 0
    discards: int = 0
    disk_writebacks: int = 0
    messages: int = 0

    @property
    def global_hit_ratio(self) -> float:
        if self.getpages == 0:
            return 0.0
        return (self.remote_hits + self.local_global_hits) / self.getpages


class Cluster:
    """A set of GMS nodes sharing their memory.

    ``instrument`` optionally receives per-operation counters
    (``gms_getpage_*`` / ``gms_putpages``); cumulative protocol stats are
    always available in :attr:`stats`.
    """

    def __init__(
        self,
        epoch_params: EpochParams | None = None,
        seed: int = 0,
        instrument: "Instrument | None" = None,
    ) -> None:
        self._nodes: dict[NodeId, Node] = {}
        self._pod: PageOwnershipDirectory | None = None
        self._gcd: GlobalCacheDirectory | None = None
        self._epoch = EpochManager(epoch_params, seed=seed)
        self.stats = ClusterStats()
        self._dirty: set[PageUid] = set()
        self._ins = instrument
        #: How many times the POD/GCD were rebuilt (each rebuild rehashes
        #: every placement, so construction cost is rebuilds x entries).
        self.directory_rebuilds = 0

    # -- construction ------------------------------------------------------

    def add_node(self, capacity: int) -> Node:
        """Add a node; invalidates and rebuilds the directories."""
        return self.add_nodes([capacity])[0]

    def add_nodes(self, capacities: list[int]) -> list[Node]:
        """Add several nodes with a single directory rebuild at the end.

        ``add_node`` rehashes the POD and re-inserts every directory
        entry per call, which makes an N-node cluster O(N^2) to
        construct; batching the adds keeps the figMT 256-node setup
        linear.  The resulting cluster state is identical to N
        ``add_node`` calls.
        """
        added: list[Node] = []
        for capacity in capacities:
            node_id = len(self._nodes)
            node = Node(node_id, capacity)
            self._nodes[node_id] = node
            added.append(node)
        if added:
            self._rebuild_directories()
        return added

    def _rebuild_directories(self) -> None:
        """Rehash the POD over the current nodes and rebuild the GCD.

        Entries are carried over from the previous GCD (not re-scanned
        from node placements) so the authoritative holder of a shared
        page survives the rebuild — a placement scan would re-point the
        entry at whichever copy the scan visited last.  Copysets are
        carried over with them.
        """
        self._pod = PageOwnershipDirectory(list(self._nodes))
        old = self._gcd
        self._gcd = GlobalCacheDirectory(self._pod)
        self.directory_rebuilds += 1
        if old is None:
            return
        for uid, holder in old.entries():
            self._gcd.update(uid, holder)
            for sharer in old.sharers(uid):
                self._gcd.add_sharer(uid, sharer)

    @property
    def nodes(self) -> dict[NodeId, Node]:
        return self._nodes

    @property
    def directory(self) -> GlobalCacheDirectory:
        if self._gcd is None:
            raise GmsError("cluster has no nodes yet")
        return self._gcd

    def node(self, node_id: NodeId) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise GmsError(f"no node {node_id}") from None

    # -- warm-cache setup ----------------------------------------------------

    def warm_fill(
        self, origin: NodeId, vpns: list[int], age: float = 0.0
    ) -> int:
        """Preload ``origin``'s pages into other nodes' global memory.

        Models the paper's warm-cache starting condition: "all pages are
        assumed to initially reside in remote memory" (Section 4.1).
        Pages are spread round-robin over the other nodes' free frames.
        Returns the number of pages placed; raises if they do not fit.
        """
        hosts = [n for nid, n in self._nodes.items() if nid != origin]
        if not hosts:
            raise GmsError("warm_fill needs at least one other node")
        free = sum(h.free_frames for h in hosts)
        if free < len(vpns):
            raise CapacityError(
                f"warm_fill needs {len(vpns)} free frames, cluster of "
                f"{len(hosts)} idle nodes has {free}"
            )
        # True round-robin: interleave hosts until each runs out of room.
        slots: list[Node] = []
        remaining = {h.node_id: h.free_frames for h in hosts}
        while len(slots) < len(vpns):
            progressed = False
            for host in hosts:
                if remaining[host.node_id] > 0:
                    slots.append(host)
                    remaining[host.node_id] -= 1
                    progressed = True
            if not progressed:  # pragma: no cover - guarded above
                break
        placed = 0
        for vpn, host in zip(vpns, slots):
            uid = PageUid(origin, vpn)
            host.add_global(uid, age)
            self.directory.update(uid, host.node_id)
            placed += 1
        return placed

    def warm_fill_uids(
        self,
        uids: list[PageUid],
        age: float = 0.0,
        exclude: tuple[NodeId, ...] = (),
    ) -> int:
        """Preload explicit UIDs into global memory, round-robin.

        Like :meth:`warm_fill` but with caller-chosen UID namespaces
        (needed when some pages are shared across workloads).  UIDs
        already in the directory are skipped, so several workloads can
        warm-fill a common shared region without duplicates.  Nodes in
        ``exclude`` (typically the active nodes) receive nothing.
        """
        hosts = [
            n for nid, n in self._nodes.items() if nid not in exclude
        ]
        if not hosts:
            raise GmsError("warm_fill_uids needs at least one host node")
        fresh = list(
            dict.fromkeys(
                u for u in uids if not self.directory.contains(u)
            )
        )
        free = sum(h.free_frames for h in hosts)
        if free < len(fresh):
            raise CapacityError(
                f"warm_fill_uids needs {len(fresh)} free frames, hosts "
                f"have {free}"
            )
        placed = 0
        cursor = 0
        unplaced: list[PageUid] = []
        for uid in fresh:
            for _ in range(len(hosts)):
                host = hosts[cursor % len(hosts)]
                cursor += 1
                if host.free_frames > 0 and not host.holds(uid):
                    host.add_global(uid, age)
                    self.directory.update(uid, host.node_id)
                    placed += 1
                    break
            else:
                # Every host with a free frame already holds this UID
                # (possible when a caller pre-seeded copies): the
                # aggregate capacity check above cannot see this, and
                # silently returning a short count would leave callers
                # believing their warm cache is complete.
                unplaced.append(uid)
        if unplaced:
            shown = ", ".join(str(u) for u in unplaced[:8])
            if len(unplaced) > 8:
                shown += f", ... ({len(unplaced) - 8} more)"
            raise CapacityError(
                f"warm_fill_uids could not place {len(unplaced)} "
                f"page(s) — every host with free frames already holds "
                f"them: {shown}"
            )
        return placed

    # -- protocol operations ---------------------------------------------

    def _msg(self, src: NodeId, dst: NodeId, count: int = 1) -> int:
        """Count ``count`` messages unless src == dst (free)."""
        if src == dst:
            return 0
        self.stats.messages += count
        return count

    def _ensure_frame(self, node: Node) -> None:
        """Make room for an incoming local page on a full node.

        Under multi-tenant interleaving another tenant's putpages can
        fill an *active* node's spare frames with hosted global pages;
        when a fault then fills a local page, GMS displaces the oldest
        hosted global page first (local pressure beats hosting).  The
        displaced page leaves through the standard :meth:`putpage`
        machinery, so forwarding, discard, and message accounting all
        apply.  No-op when a frame is free or the node hosts no global
        pages (a node genuinely full of local pages still fails
        ``add_local``'s capacity check).
        """
        if node.free_frames > 0:
            return
        victim = node.oldest_global()
        if victim is None:
            return
        self.putpage(node.node_id, victim, age=node.global_age(victim))

    def _observe_get(self, location: PageLocation) -> None:
        if self._ins is not None:
            self._ins.counter(f"gms_getpage_{location.name.lower()}")

    def getpage(
        self, requester: NodeId, uid: PageUid, now: float
    ) -> GetPageResult:
        """Fault path: locate ``uid`` and move it to ``requester``.

        On a global-memory hit the page moves into the requester's local
        memory (the caller must have freed a frame first).  On a miss the
        caller fills from disk; the directory then knows the requester
        holds the page.
        """
        self.stats.getpages += 1
        req_node = self.node(requester)
        manager = self.directory.pod.manager_of(uid)
        messages = self._msg(requester, manager)
        if not self.directory.contains(uid):
            # Directory miss: page only exists on disk.
            self.stats.disk_fills += 1
            messages += self._msg(manager, requester)
            self._ensure_frame(req_node)
            req_node.add_local(uid, now)
            self.directory.update(uid, requester)
            self._observe_get(PageLocation.DISK)
            return GetPageResult(uid, PageLocation.DISK, None, messages)
        holder_id = self.directory.lookup(uid)
        holder = self.node(holder_id)
        if holder_id == requester:
            # The requester itself hosts the page as a global page.
            holder.promote_to_local(uid, now)
            self.stats.local_global_hits += 1
            self.directory.update(uid, requester)
            self._observe_get(PageLocation.LOCAL_GLOBAL)
            return GetPageResult(
                uid, PageLocation.LOCAL_GLOBAL, requester, messages
            )
        messages += self._msg(manager, holder_id)
        if holder.holds_global(uid):
            holder.remove_global(uid)
        elif holder.holds_local(uid):
            # Shared page actively used elsewhere: we take a copy and the
            # holder keeps its local copy.  The directory keeps pointing
            # at the established holder so further sharers copy from it;
            # correctness relies on shared pages being read-only (code).
            self.stats.shared_copies += 1
            messages += self._msg(holder_id, requester)
            self._ensure_frame(req_node)
            req_node.add_local(uid, now)
            self.directory.add_sharer(uid, requester)
            self.stats.remote_hits += 1
            self._observe_get(PageLocation.REMOTE_MEMORY)
            return GetPageResult(
                uid, PageLocation.REMOTE_MEMORY, holder_id, messages
            )
        else:
            raise GmsError(
                f"directory says node {holder_id} holds {uid}, but it "
                f"does not"
            )
        messages += self._msg(holder_id, requester)
        self._ensure_frame(req_node)
        req_node.add_local(uid, now)
        self.directory.update(uid, requester)
        self.stats.remote_hits += 1
        self._observe_get(PageLocation.REMOTE_MEMORY)
        return GetPageResult(
            uid, PageLocation.REMOTE_MEMORY, holder_id, messages
        )

    def putpage(
        self,
        evicting: NodeId,
        uid: PageUid,
        age: float,
        dirty: bool = False,
    ) -> NodeId | None:
        """Eviction path: forward a page to global memory (or disk).

        Returns the receiving node, or ``None`` when the page was dropped
        or written back to disk (it was among the globally oldest, or no
        node had room).
        """
        self.stats.putpages += 1
        if self._ins is not None:
            self._ins.counter("gms_putpages")
        evictor = self.node(evicting)
        if evictor.holds_local(uid):
            evictor.drop_local(uid)
        elif evictor.holds_global(uid):
            evictor.remove_global(uid)
        else:
            raise GmsError(f"node {evicting} does not hold {uid}")
        if dirty:
            self._dirty.add(uid)

        if self.directory.contains(uid):
            holder_id = self.directory.lookup(uid)
            if holder_id != evicting and self.node(holder_id).holds(uid):
                # A sharer evicted its *copy* of a page the directory's
                # holder still has: the copy is redundant.  Forwarding
                # it would re-point the directory away from the
                # established holder (later getpages would then move or
                # discard the wrong copy, and the original holder's copy
                # would become invisible to where_is) — or crash
                # outright when the forward target already holds the
                # page.  Just drop the copy.
                self.directory.remove_sharer(uid, evicting)
                self.stats.discards += 1
                return None
            if holder_id == evicting:
                # The canonical holder is evicting a page other nodes
                # may still hold copies of: promote a surviving copy to
                # canonical instead of dropping the page to disk, so no
                # local copy is ever directory-orphaned.  The directory
                # copyset makes this O(copies) rather than a scan over
                # every node in the cluster.
                for sharer_id in self.directory.sharers(uid):
                    if self.node(sharer_id).holds(uid):
                        self.directory.update(uid, sharer_id)
                        self._msg(
                            evicting, self.directory.pod.manager_of(uid)
                        )
                        self.stats.discards += 1
                        return None

        if self._epoch.should_discard(self._nodes, age) or len(
            self._nodes
        ) < 2:
            self._to_disk(uid, evicting)
            return None

        target_id = self._epoch.choose_target(self._nodes, exclude=evicting)
        target = self.node(target_id)
        if target.free_frames <= 0:
            # Make room by pushing the target's oldest global page to disk;
            # if it hosts none, fall back to discarding the incoming page.
            victim = target.oldest_global()
            if victim is None:
                self._to_disk(uid, evicting)
                return None
            target.remove_global(victim)
            self._to_disk(victim, target_id)
        target.add_global(uid, age)
        self.directory.update(uid, target_id)
        self._msg(evicting, target_id)
        manager = self.directory.pod.manager_of(uid)
        self._msg(evicting, manager)
        return target_id

    def _to_disk(self, uid: PageUid, from_node: NodeId) -> None:
        """Drop a page from the global cache (writing back if dirty).

        Charges the same protocol messages every other path pays: a
        writeback to the page's origin node (whose disk backs it) when
        dirty, and a directory-removal notice to the page's manager when
        an entry exists.  Both are free when ``from_node`` is already
        the destination, matching ``_msg``'s self-send rule.
        """
        if uid in self._dirty:
            self.stats.disk_writebacks += 1
            self._dirty.discard(uid)
            self._msg(from_node, uid.origin)
        else:
            self.stats.discards += 1
        if self.directory.contains(uid):
            self._msg(from_node, self.directory.pod.manager_of(uid))
            self.directory.remove(uid)

    # -- introspection ---------------------------------------------------

    def total_free_frames(self) -> int:
        return sum(n.free_frames for n in self._nodes.values())

    def where_is(self, uid: PageUid) -> NodeId | None:
        """Which node currently stores ``uid`` (None = disk only)."""
        if self._gcd is None or not self.directory.contains(uid):
            return None
        return self.directory.lookup(uid)
