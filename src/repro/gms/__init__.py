"""Global memory system (GMS) substrate.

The paper's prototype extends GMS — the global memory management system of
Feeley et al. (SOSP 1995, reference [7]) — in which the idle memory of
lightly-loaded nodes holds pages evicted by heavily-loaded ones.  This
package implements that substrate:

* :mod:`repro.gms.ids` — node and global page identifiers;
* :mod:`repro.gms.node` — a node's memory, split into local (active) and
  global (stored on behalf of others) frames;
* :mod:`repro.gms.directory` — the page-ownership directory (POD) and the
  distributed global-cache directory (GCD) mapping pages to nodes;
* :mod:`repro.gms.epoch` — epoch-based global replacement: per-epoch
  weights steer evictions toward the nodes holding the globally oldest
  pages;
* :mod:`repro.gms.cluster` — the cluster facade with ``getpage`` /
  ``putpage`` and message accounting.

The paper's simulations assume a *warm* global cache (every faulted page
is in some idle node's memory).  With this substrate that is a
configuration — a cluster with enough idle memory — rather than a stub.
"""

from repro.gms.cluster import Cluster, GetPageResult, PageLocation
from repro.gms.directory import GlobalCacheDirectory, PageOwnershipDirectory
from repro.gms.epoch import EpochManager, EpochParams
from repro.gms.ids import NodeId, PageUid
from repro.gms.node import Node, NodeMemoryStats

__all__ = [
    "Cluster",
    "EpochManager",
    "EpochParams",
    "GetPageResult",
    "GlobalCacheDirectory",
    "Node",
    "NodeId",
    "NodeMemoryStats",
    "PageLocation",
    "PageOwnershipDirectory",
    "PageUid",
]
